// Package bench implements the paper's evaluation section (§6): one
// experiment per table and figure, each regenerating the corresponding rows
// or series at simulated (laptop) scale. The experiments are shared by
// cmd/gesbench and the root bench_test.go; EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/volcano"
)

// Config scales an experiment run.
type Config struct {
	// SFs are the simulated scale factors to sweep (largest last).
	SFs []float64
	// Runs is the number of parameter draws per query measurement.
	Runs int
	// MixOps is the number of operations per throughput run.
	MixOps int
	// Workers is the worker count for throughput runs.
	Workers int
	// TraceFor and TraceBucket size the Figure 14 trace.
	TraceFor    time.Duration
	TraceBucket time.Duration
	Seed        int64
	// JSONPath, when non-empty, is where experiments that produce a
	// machine-readable artifact ("parallel", "gather") write it.
	JSONPath string
	// NoGather disables the vectorized property-gather path (§5) on every
	// engine the experiments build — the scalar ablation baseline.
	NoGather bool
	// NoCSR disables the batched adjacency kernel (NeighborsBatch over the
	// sealed CSR snapshots); expansion falls back to per-source segment walks.
	NoCSR bool
	// NoIntersect disables the merge/galloping intersection in ExpandInto;
	// cyclic pattern edges close through the hash-set probe instead.
	NoIntersect bool
	// NoWCOJ de-fuses ExpandIntersect into the classical binary-join plan
	// (expand the candidate set, close each edge with ExpandInto).
	NoWCOJ bool
	// NoCost disables cost-based Cypher planning: the planner experiment
	// (and any cypher compilation the experiments perform) binds plans in
	// syntactic order, exactly as written.
	NoCost bool
	// NoRecycle disables executor memory recycling on every engine the
	// experiments build: arenas allocate fresh and return nothing to the
	// pool — the §5 memory-pool ablation baseline.
	NoRecycle bool
	// NoOverlay disables the delta-overlay CSR in the update experiment:
	// sealed images invalidate on mutation (the pre-overlay behavior) and the
	// harness serializes readers against the writer behind a RWMutex. The
	// experiment then measures only the ablation side.
	NoOverlay bool
	// ResealFraction, when > 0, overrides the background-reseal threshold in
	// the update experiment: a family reseals once its delta exceeds this
	// fraction of its sealed entry count (storage.DefaultResealFraction
	// otherwise).
	ResealFraction float64
}

// newEngine returns an engine honoring the ablation switches.
func (cfg Config) newEngine(mode exec.Mode) *exec.Engine {
	e := exec.New(mode)
	e.NoGather, e.NoDictCmp, e.NoZoneMap = cfg.NoGather, cfg.NoGather, cfg.NoGather
	e.NoCSR, e.NoIntersect, e.NoWCOJ = cfg.NoCSR, cfg.NoIntersect, cfg.NoWCOJ
	e.NoCost = cfg.NoCost
	e.NoRecycle = cfg.NoRecycle
	return e
}

// newRunner wires a workload runner around a config-built engine.
func (cfg Config) newRunner(ds *ldbc.Dataset, mode exec.Mode) *queries.Runner {
	return queries.NewRunnerWith(ds, cfg.newEngine(mode), nil)
}

// Quick returns a configuration sized for CI / `go test -bench`.
func Quick() Config {
	return Config{
		SFs:         []float64{0.03, 0.1},
		Runs:        10,
		MixOps:      400,
		Workers:     4,
		TraceFor:    2 * time.Second,
		TraceBucket: 200 * time.Millisecond,
		Seed:        1,
	}
}

// Full returns the configuration used for EXPERIMENTS.md (minutes-scale).
func Full() Config {
	return Config{
		SFs:         []float64{0.03, 0.1, 0.3, 1},
		Runs:        15,
		MixOps:      2000,
		Workers:     runtime.NumCPU(),
		TraceFor:    20 * time.Second,
		TraceBucket: 1 * time.Second,
		Seed:        1,
	}
}

// Modes are the paper's three engine variants, in ablation order.
var Modes = []exec.Mode{exec.ModeFlat, exec.ModeFactorized, exec.ModeFused}

// icNames returns IC1..IC14 in numeric order.
func icNames() []string {
	var names []string
	for _, q := range queries.OfKind(queries.IC) {
		names = append(names, q.Name)
	}
	sort.Slice(names, func(i, j int) bool {
		return icNum(names[i]) < icNum(names[j])
	})
	return names
}

// mustQuery resolves a registered query by name. Experiment tables iterate
// names that come from the registry itself (icNames and fixed IC subsets),
// so a lookup failure is a programming error, not a runtime condition.
func mustQuery(name string) *queries.Query {
	q, err := queries.ByName(name)
	if err != nil {
		panic(err)
	}
	return q
}

func icNum(name string) int {
	n := 0
	fmt.Sscanf(name, "IC%d", &n)
	return n
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string // e.g. "table2", "fig11"
	Title string
	Run   func(w io.Writer, cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment { return registry }

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

func init() {
	register(Experiment{"table1", "Table 1: datasets and statistics", table1})
	register(Experiment{"fig2", "Figure 2: per-query execution analysis (flat engine)", fig2})
	register(Experiment{"fig3", "Figure 3: operator-level breakdown of long-running queries", fig3})
	register(Experiment{"fig11", "Figure 11: average latency, GES vs GES_f vs GES_f*", fig11})
	register(Experiment{"fig12", "Figure 12: tail latency on the largest graph", fig12})
	register(Experiment{"table2", "Table 2: peak intermediate-result memory and reduction ratio", table2})
	register(Experiment{"table3", "Table 3: throughput of the three variants", table3})
	register(Experiment{"fig13", "Figure 13: scalability with worker count", fig13})
	register(Experiment{"fig14", "Figure 14: throughput trace over a full run", fig14})
	register(Experiment{"fig15", "Figure 15: per-query latency across engine architectures", fig15})
	register(Experiment{"table4", "Table 4: cross-architecture throughput", table4})
}

func table1(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "simSF      persons   vertices   edges        size")
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		s := ds.Stats()
		fmt.Fprintf(w, "%-10.4g %-9d %-10d %-12d %s\n", s.SF, s.Persons, s.Vertices, s.Edges, ldbc.FmtBytes(s.Bytes))
	}
	return nil
}

func fig2(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	r := cfg.newRunner(ds, exec.ModeFlat)
	fmt.Fprintf(w, "flat GES engine, simSF=%.4g, %d runs per query, single worker\n", sf, cfg.Runs)
	fmt.Fprintln(w, "query   total(ms)    avg(ms)")
	for _, name := range icNames() {
		q := mustQuery(name)
		st, err := driver.MeasureQuery(r, q, cfg.Runs, cfg.Seed, false)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "%-7s %-12.2f %-10.3f\n", name, ms(st.Total), ms(st.Avg))
	}
	return nil
}

func fig3(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	r := cfg.newRunner(ds, exec.ModeFlat)
	fmt.Fprintf(w, "operator breakdown of long-running queries, flat engine, simSF=%.4g\n", sf)
	for _, name := range []string{"IC5", "IC6", "IC9", "IC12"} {
		q := mustQuery(name)
		st, err := driver.MeasureQuery(r, q, cfg.Runs, cfg.Seed, true)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var total time.Duration
		for _, d := range st.ByOp {
			total += d
		}
		type pair struct {
			name string
			d    time.Duration
		}
		var ps []pair
		for n, d := range st.ByOp {
			ps = append(ps, pair{n, d})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].d > ps[j].d })
		fmt.Fprintf(w, "%s (total %0.2fms):\n", name, ms(total))
		for _, p := range ps {
			fmt.Fprintf(w, "    %-24s %6.1f%%  %0.3fms\n", p.name, pct(p.d, total), ms(p.d))
		}
	}
	return nil
}

func fig11(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "average latency (ms) per IC query and engine variant")
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- simSF=%.4g ---\n", sf)
		fmt.Fprintf(w, "%-7s %12s %12s %12s %9s %9s\n", "query", "GES", "GES_f", "GES_f*", "f-spdup", "f*-spdup")
		for _, name := range icNames() {
			q := mustQuery(name)
			var avg [3]time.Duration
			for mi, mode := range Modes {
				r := cfg.newRunner(ds, mode)
				st, err := driver.MeasureQuery(r, q, cfg.Runs, cfg.Seed, false)
				if err != nil {
					return fmt.Errorf("%s %s: %w", name, mode, err)
				}
				avg[mi] = st.Avg
			}
			fmt.Fprintf(w, "%-7s %12.3f %12.3f %12.3f %8.1fx %8.1fx\n",
				name, ms(avg[0]), ms(avg[1]), ms(avg[2]),
				speedup(avg[0], avg[1]), speedup(avg[0], avg[2]))
		}
	}
	return nil
}

func fig12(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	runs := cfg.Runs * 10 // percentiles need samples
	fmt.Fprintf(w, "tail latency (ms), simSF=%.4g, %d samples per query\n", sf, runs)
	fmt.Fprintf(w, "%-7s %-8s %12s %12s %12s\n", "query", "pct", "GES", "GES_f", "GES_f*")
	for _, name := range icNames() {
		q := mustQuery(name)
		var p99, p999 [3]time.Duration
		for mi, mode := range Modes {
			r := cfg.newRunner(ds, mode)
			st, err := driver.MeasureQuery(r, q, runs, cfg.Seed, false)
			if err != nil {
				return err
			}
			p99[mi], p999[mi] = st.P99, st.P999
		}
		fmt.Fprintf(w, "%-7s %-8s %12.3f %12.3f %12.3f\n", name, "p99", ms(p99[0]), ms(p99[1]), ms(p99[2]))
		fmt.Fprintf(w, "%-7s %-8s %12.3f %12.3f %12.3f\n", "", "p99.9", ms(p999[0]), ms(p999[1]), ms(p999[2]))
	}
	return nil
}

func table2(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "peak intermediate-result memory per query (avg over runs); R.R. = reduction of GES_f* vs GES")
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- simSF=%.4g ---\n", sf)
		fmt.Fprintf(w, "%-7s %12s %12s %12s %8s\n", "query", "GES", "GES_f", "GES_f*", "R.R.")
		for _, name := range icNames() {
			q := mustQuery(name)
			var mem [3]int
			for mi, mode := range Modes {
				r := cfg.newRunner(ds, mode)
				st, err := driver.MeasureQuery(r, q, cfg.Runs, cfg.Seed, false)
				if err != nil {
					return err
				}
				mem[mi] = st.AvgMem
			}
			rr := 0.0
			if mem[0] > 0 {
				rr = 100 * float64(mem[0]-mem[2]) / float64(mem[0])
			}
			fmt.Fprintf(w, "%-7s %12s %12s %12s %7.1f%%\n",
				name, ldbc.FmtBytes(mem[0]), ldbc.FmtBytes(mem[1]), ldbc.FmtBytes(mem[2]), rr)
		}
	}
	return nil
}

func table3(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "mix throughput (queries/s), %d ops, %d workers\n", cfg.MixOps, cfg.Workers)
	fmt.Fprintf(w, "%-8s %12s %16s %16s\n", "simSF", "GES", "GES_f", "GES_f*")
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		var tp [3]float64
		for mi, mode := range Modes {
			r := cfg.newRunner(ds, mode)
			res := driver.Run(r, driver.Options{Workers: cfg.Workers, Ops: cfg.MixOps, Seed: cfg.Seed})
			if res.Failed > 0 {
				return fmt.Errorf("table3: %d failed queries in %s", res.Failed, mode)
			}
			tp[mi] = res.Throughput
		}
		fmt.Fprintf(w, "%-8.4g %12.0f %9.0f (%3.1fx) %9.0f (%3.1fx)\n",
			sf, tp[0], tp[1], tp[1]/tp[0], tp[2], tp[2]/tp[0])
	}
	return nil
}

func fig13(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "GES_f* mix throughput (queries/s) vs workers")
	// Sweep past the configured worker count so the shape is visible even
	// on small hosts (on a single-core machine the curve flattens at one
	// worker — an honest environment artifact recorded in EXPERIMENTS.md).
	maxWorkers := cfg.Workers
	if maxWorkers < 8 {
		maxWorkers = 8
	}
	var workerSweep []int
	for n := 1; n <= maxWorkers; n *= 2 {
		workerSweep = append(workerSweep, n)
	}
	header := fmt.Sprintf("%-8s", "simSF")
	for _, n := range workerSweep {
		header += fmt.Sprintf(" %9dw", n)
	}
	fmt.Fprintln(w, header)
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("%-8.4g", sf)
		for _, n := range workerSweep {
			r := cfg.newRunner(ds, exec.ModeFused)
			res := driver.Run(r, driver.Options{Workers: n, Ops: cfg.MixOps, Seed: cfg.Seed})
			line += fmt.Sprintf(" %10.0f", res.Throughput)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

func fig14(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	r := cfg.newRunner(ds, exec.ModeFused)
	fmt.Fprintf(w, "GES_f* throughput trace, simSF=%.4g, %d workers, %v buckets\n",
		sf, cfg.Workers, cfg.TraceBucket)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "t", "IC/s", "IS/s", "IU/s", "all/s")
	trace := driver.RunTrace(r, cfg.Workers, cfg.TraceFor, cfg.TraceBucket, cfg.Seed)
	perSec := 1 / cfg.TraceBucket.Seconds()
	for _, p := range trace {
		fmt.Fprintf(w, "%-10v %8.0f %8.0f %8.0f %8.0f\n",
			p.At, float64(p.IC)*perSec, float64(p.IS)*perSec, float64(p.IU)*perSec, float64(p.Overall)*perSec)
	}
	return nil
}

// crossEngines builds the engine lineup for the cross-architecture
// experiments: volcano (tuple-at-a-time iterator, Neo4j-style) plus the
// three GES variants (GES flat also stands in for block-based relational
// engines — see DESIGN.md §3).
func crossEngines(cfg Config, ds *ldbc.Dataset) map[string]*queries.Runner {
	return map[string]*queries.Runner{
		"volcano": queries.NewRunnerWith(ds, volcano.New(), nil),
		"GES":     cfg.newRunner(ds, exec.ModeFlat),
		"GES_f":   cfg.newRunner(ds, exec.ModeFactorized),
		"GES_f*":  cfg.newRunner(ds, exec.ModeFused),
	}
}

var crossOrder = []string{"volcano", "GES", "GES_f", "GES_f*"}

func fig15(w io.Writer, cfg Config) error {
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		engines := crossEngines(cfg, ds)
		fmt.Fprintf(w, "--- average latency (ms), simSF=%.4g ---\n", sf)
		fmt.Fprintf(w, "%-7s %12s %12s %12s %12s\n", "query", crossOrder[0], crossOrder[1], crossOrder[2], crossOrder[3])
		var names []string
		names = append(names, icNames()...)
		for _, q := range queries.OfKind(queries.IS) {
			names = append(names, q.Name)
		}
		for _, name := range names {
			q := mustQuery(name)
			line := fmt.Sprintf("%-7s", name)
			for _, eng := range crossOrder {
				st, err := driver.MeasureQuery(engines[eng], q, cfg.Runs, cfg.Seed, false)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", name, eng, err)
				}
				line += fmt.Sprintf(" %12.3f", ms(st.Avg))
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

func table4(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "mix throughput (queries/s) across architectures, %d ops, %d workers\n", cfg.MixOps, cfg.Workers)
	header := fmt.Sprintf("%-8s", "simSF")
	for _, eng := range crossOrder {
		header += fmt.Sprintf(" %12s", eng)
	}
	fmt.Fprintln(w, header)
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		engines := crossEngines(cfg, ds)
		line := fmt.Sprintf("%-8.4g", sf)
		for _, eng := range crossOrder {
			res := driver.Run(engines[eng], driver.Options{Workers: cfg.Workers, Ops: cfg.MixOps, Seed: cfg.Seed})
			if res.Failed > 0 {
				return fmt.Errorf("table4: %d failures on %s", res.Failed, eng)
			}
			line += fmt.Sprintf(" %12.0f", res.Throughput)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func speedup(base, improved time.Duration) float64 {
	if improved == 0 {
		return 0
	}
	return float64(base) / float64(improved)
}
