// The "parallel" experiment measures the morsel-driven runtime added on top
// of the paper's engine: intra-query scaling of the fused-predicate expansion
// and the service-side plan cache under concurrent clients. It also emits the
// machine-readable BENCH_parallel.json artifact when Config.JSONPath is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/service"
)

func init() {
	register(Experiment{"parallel", "Morsel runtime: fused-expand scaling and plan-cache hit rates", parallelExp})
}

// parallelWorkerSweep is the worker/client sweep shared by the experiment,
// the benchmarks, and the JSON artifact.
var parallelWorkerSweep = []int{1, 2, 4, 8}

// fusedParallelPlan is the canonical morsel-runtime workload: a full-scan
// two-hop expansion whose second hop carries a fused vertex predicate keeping
// roughly half the neighbors, followed by a parallel property gather and a
// parallel defactorization. Rebuilt per run so fused predicate state never
// leaks across executions.
func fusedParallelPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	mid := int64(ds.Stats().Persons / 2)
	return plan.Plan{
		&op.NodeScan{Var: "p", Label: h.Person},
		&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
			VertexPred: op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(mid)), nil)},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
		&op.Defactor{Cols: []string{"g.id"}},
	}
}

// parallelReport is the schema of BENCH_parallel.json.
type parallelReport struct {
	SimSF       float64            `json:"simSF"`
	Cores       int                `json:"cores"`
	ExpandFused []expandScalePoint `json:"expandFused"`
	PlanCache   planCacheReport    `json:"planCache"`
}

type expandScalePoint struct {
	Workers int     `json:"workers"`
	AvgMs   float64 `json:"avgMs"`
	Speedup float64 `json:"speedup"` // vs workers=1
}

type planCacheReport struct {
	Clients []cacheScalePoint `json:"clients"`
	Hits    uint64            `json:"hits"`
	Misses  uint64            `json:"misses"`
	HitRate float64           `json:"hitRate"`
}

type cacheScalePoint struct {
	Clients int     `json:"clients"`
	QPS     float64 `json:"qps"`
}

func parallelExp(w io.Writer, cfg Config) error {
	sf := cfg.SFs[len(cfg.SFs)-1]
	ds, err := driver.SharedDataset(sf)
	if err != nil {
		return err
	}
	report := parallelReport{SimSF: sf, Cores: runtime.NumCPU()}

	// --- intra-query scaling: fused-predicate expansion ---
	fmt.Fprintf(w, "fused-expand scaling, simSF=%.4g, %d runs per point, %d cores\n",
		sf, cfg.Runs, runtime.NumCPU())
	fmt.Fprintf(w, "%-9s %12s %9s\n", "workers", "avg(ms)", "speedup")
	var base time.Duration
	for _, n := range parallelWorkerSweep {
		eng := cfg.newEngine(exec.ModeFactorized)
		eng.Parallel = n
		// One warmup run outside the measurement.
		if _, err := eng.Run(ds.Graph, fusedParallelPlan(ds)); err != nil {
			return fmt.Errorf("workers=%d: %w", n, err)
		}
		var total time.Duration
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			if _, err := eng.Run(ds.Graph, fusedParallelPlan(ds)); err != nil {
				return fmt.Errorf("workers=%d: %w", n, err)
			}
			total += time.Since(start)
		}
		avg := total / time.Duration(cfg.Runs)
		if n == 1 {
			base = avg
		}
		fmt.Fprintf(w, "%-9d %12.3f %8.2fx\n", n, ms(avg), speedup(base, avg))
		report.ExpandFused = append(report.ExpandFused, expandScalePoint{
			Workers: n, AvgMs: ms(avg), Speedup: speedup(base, avg),
		})
	}

	// --- inter-query scaling: plan cache under concurrent clients ---
	srv := service.NewWith(ds, exec.ModeFused, service.Options{Parallel: 1})
	mux := srv.Mux()
	const body = `{"query":"MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1 RETURN COUNT(*) AS friends"}`
	post := func() error {
		req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("POST /query: status %d: %s", rec.Code, rec.Body.String())
		}
		return nil
	}
	ops := cfg.MixOps
	if ops < 8 {
		ops = 8
	}
	fmt.Fprintf(w, "plan-cache service throughput, %d requests per point (one query text)\n", ops)
	fmt.Fprintf(w, "%-9s %12s\n", "clients", "req/s")
	for _, clients := range parallelWorkerSweep {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		per := ops / clients
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			// Benchmark clients stand in for concurrent external callers
			// (Figure 13); they must not draw from the engine's pool.
			//geslint:go-ok
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := post(); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errCh)
		if err := <-errCh; err != nil {
			return err
		}
		qps := float64(clients*per) / elapsed.Seconds()
		fmt.Fprintf(w, "%-9d %12.0f\n", clients, qps)
		report.PlanCache.Clients = append(report.PlanCache.Clients, cacheScalePoint{
			Clients: clients, QPS: qps,
		})
	}

	// Pull the lifetime counters straight from /stats so the artifact reflects
	// what an operator would see.
	statsReq := httptest.NewRequest(http.MethodGet, "/stats", nil)
	statsRec := httptest.NewRecorder()
	mux.ServeHTTP(statsRec, statsReq)
	var stats struct {
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"planCache"`
	}
	if err := json.Unmarshal(statsRec.Body.Bytes(), &stats); err != nil {
		return fmt.Errorf("decode /stats: %w", err)
	}
	report.PlanCache.Hits = stats.PlanCache.Hits
	report.PlanCache.Misses = stats.PlanCache.Misses
	if total := stats.PlanCache.Hits + stats.PlanCache.Misses; total > 0 {
		report.PlanCache.HitRate = float64(stats.PlanCache.Hits) / float64(total)
	}
	fmt.Fprintf(w, "plan cache: %d hits / %d misses (%.1f%% hit rate)\n",
		report.PlanCache.Hits, report.PlanCache.Misses, 100*report.PlanCache.HitRate)

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
