// The "mem" experiment measures executor-wide memory recycling (§5, memory
// pool): query arenas over the size-classed pool, reusable f-Trees, and
// pooled morsel scratch, ablated against the NoRecycle fresh-allocation
// baseline. Every variant pair is cross-checked for byte-identical results
// (including across worker counts) before anything is timed. It emits the
// machine-readable BENCH_mem.json artifact when Config.JSONPath is set.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"ges/internal/catalog"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
)

func init() {
	register(Experiment{"mem", "Memory recycling: query arenas, reusable f-Trees, pooled morsel scratch", memExp})
}

// MemVariant is one point of the recycling ablation.
type MemVariant struct {
	Name      string
	NoRecycle bool
}

// MemVariants lists the ablation pair, baseline first.
var MemVariants = []MemVariant{
	{Name: "no-recycle", NoRecycle: true},
	{Name: "recycle", NoRecycle: false},
}

// Engine builds an engine with the variant's knob applied.
func (v MemVariant) Engine(mode exec.Mode, workers int) *exec.Engine {
	e := exec.New(mode)
	e.Parallel = workers
	e.NoRecycle = v.NoRecycle
	return e
}

// MemExpandPlan is the canonical recycling workload: a fused-predicate
// two-hop expansion over the knows graph followed by a batched external-ID
// gather and a count aggregation. Every hot structure the arena recycles is
// on the path — lazy expand batches and index vectors, fused-predicate morsel
// scratch, gather staging, f-Tree nodes and selection vectors — while the
// aggregate keeps the result tiny so the measurement is scratch traffic, not
// result materialization.
func MemExpandPlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	mid := int64(ds.Stats().Persons / 2)
	return plan.Plan{
		&op.NodeScan{Var: "p", Label: h.Person},
		&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
			VertexPred: op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(mid)), nil)},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
		&op.AggregateProjectTop{
			Aggs:  []op.AggSpec{{Func: op.Count, As: "n"}},
			Keys:  []op.SortKey{{Col: "n"}},
			Limit: 1,
		},
	}
}

// memWorkerSweep is the worker-count grid of the byte-identity cross-check.
var memWorkerSweep = []int{1, 2, 4, 8}

// CheckMemIdentity runs the workload under every (variant, workers) pair and
// fails if any result diverges from the sequential no-recycle reference.
func CheckMemIdentity(ds *ldbc.Dataset, mode exec.Mode) error {
	var want string
	for _, v := range MemVariants {
		for _, workers := range memWorkerSweep {
			res, err := v.Engine(mode, workers).Run(ds.Graph, MemExpandPlan(ds))
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", v.Name, workers, err)
			}
			got := fmt.Sprint(res.Block.Names, res.Block.Rows)
			if want == "" {
				want = got
			} else if got != want {
				return fmt.Errorf("%s workers=%d: result diverges from reference: %s != %s",
					v.Name, workers, got, want)
			}
		}
	}
	return nil
}

// CheckMemIdentityOverlay is CheckMemIdentity on a delta-overlay view: a
// private dataset is sealed and then mutated with fresh KNOWS edges, so every
// expansion reads through the sealed-CSR-plus-delta merge path while the
// recycling variants are compared. Together with the base check this covers
// both transaction views the executor serves.
func CheckMemIdentityOverlay(sf float64, seed int64, mode exec.Mode) error {
	ds, err := ldbc.Generate(ldbc.Config{SF: sf, Seed: seed})
	if err != nil {
		return err
	}
	ds.Graph.SealCSR()
	// Sealed-phase writes land in the overlay delta; reuse the update
	// experiment's absent-pair picker so every edge is genuinely new.
	pairs := buildWriterPairs(ds, 64, seed)
	added := 0
	for _, p := range pairs {
		if ds.Graph.AddEdge(ds.H.Knows, p.src, p.dst, updateProp(p.src, p.dst)) == nil {
			added++
		}
	}
	if added == 0 {
		return fmt.Errorf("mem: overlay identity check added no edges")
	}
	return CheckMemIdentity(ds, mode)
}

// memVariantPoint is one measured ablation point in BENCH_mem.json.
type memVariantPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// GC deltas across the measurement loop, normalized per operation.
	GCPerOp      float64 `json:"gcPerOp"`
	GCPauseNsOp  float64 `json:"gcPauseNsPerOp"`
	PoolHitRate  float64 `json:"poolHitRate"`  // 0 for the no-recycle baseline
	PoolGets     int64   `json:"poolGets"`     // cumulative across the loop
	LiveBytesEnd int64   `json:"liveBytesEnd"` // checked-out slice bytes after the loop
}

// memRung is one scale factor of the ladder.
type memRung struct {
	SimSF    float64           `json:"simSF"`
	Persons  int               `json:"persons"`
	Variants []memVariantPoint `json:"variants"`
	// AllocReduction is no-recycle allocs/op over recycle allocs/op — the
	// headline number (acceptance floor: 5x on this workload).
	AllocReduction float64 `json:"allocReduction"`
	BytesReduction float64 `json:"bytesReduction"`
}

// memReport is the schema of BENCH_mem.json.
type memReport struct {
	Workload string    `json:"workload"`
	Mode     string    `json:"mode"`
	Ladder   []memRung `json:"ladder"`
	// Classes snapshots the per-size-class pool counters of the largest
	// rung's recycling engine.
	Classes []storage.ClassStat `json:"classes,omitempty"`
}

// benchMemVariant measures one (dataset, variant) point: ns/op, allocs/op,
// and GC activity across the loop, plus pool counters for recycling engines.
func benchMemVariant(ds *ldbc.Dataset, v MemVariant, mode exec.Mode) (memVariantPoint, *storage.Pool, error) {
	eng := v.Engine(mode, 1)
	p0 := MemExpandPlan(ds)
	// Warm the pool (and any lazy dataset state) outside the timer.
	if _, err := eng.Run(ds.Graph, p0); err != nil {
		return memVariantPoint{}, nil, err
	}
	var before, after runtime.MemStats
	var benchErr error
	runtime.GC()
	runtime.ReadMemStats(&before)
	iters := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ds.Graph, p0); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
		iters += b.N
	})
	runtime.ReadMemStats(&after)
	if benchErr != nil {
		return memVariantPoint{}, nil, benchErr
	}
	pt := memVariantPoint{
		Name:        v.Name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if iters > 0 {
		pt.GCPerOp = float64(after.NumGC-before.NumGC) / float64(iters)
		pt.GCPauseNsOp = float64(after.PauseTotalNs-before.PauseTotalNs) / float64(iters)
	}
	if !v.NoRecycle {
		st := eng.Pool.DetailedStats()
		pt.PoolHitRate = st.HitRate()
		pt.PoolGets = st.Gets
		pt.LiveBytesEnd = st.LiveBytes
	}
	return pt, eng.Pool, nil
}

func memExp(w io.Writer, cfg Config) error {
	mode := exec.ModeFused
	report := memReport{
		Workload: "2-hop fused-predicate knows expansion + ext-ID gather + count",
		Mode:     mode.String(),
	}

	var lastPool *storage.Pool
	fmt.Fprintf(w, "memory recycling ablation (%s engine), workload: %s\n", report.Mode, report.Workload)
	for _, sf := range cfg.SFs {
		ds, err := driver.SharedDataset(sf)
		if err != nil {
			return err
		}
		// Byte-identity first: recycling must be invisible in results at
		// every worker count before it is worth timing.
		if err := CheckMemIdentity(ds, mode); err != nil {
			return fmt.Errorf("simSF=%.4g: %w", sf, err)
		}
		rung := memRung{SimSF: sf, Persons: ds.Stats().Persons}
		fmt.Fprintf(w, "--- simSF=%.4g (%d persons) ---\n", sf, rung.Persons)
		fmt.Fprintf(w, "%-12s %12s %11s %12s %9s %12s %8s\n",
			"variant", "ns/op", "allocs/op", "B/op", "GC/op", "pause-ns/op", "hit%")
		var baseAllocs, baseBytes int64
		for _, v := range MemVariants {
			pt, pool, err := benchMemVariant(ds, v, mode)
			if err != nil {
				return fmt.Errorf("%s simSF=%.4g: %w", v.Name, sf, err)
			}
			if v.NoRecycle {
				baseAllocs, baseBytes = pt.AllocsPerOp, pt.BytesPerOp
			} else {
				lastPool = pool
				if pt.AllocsPerOp > 0 {
					rung.AllocReduction = float64(baseAllocs) / float64(pt.AllocsPerOp)
				}
				if pt.BytesPerOp > 0 {
					rung.BytesReduction = float64(baseBytes) / float64(pt.BytesPerOp)
				}
			}
			rung.Variants = append(rung.Variants, pt)
			fmt.Fprintf(w, "%-12s %12.0f %11d %12d %9.3f %12.0f %7.1f%%\n",
				pt.Name, pt.NsPerOp, pt.AllocsPerOp, pt.BytesPerOp,
				pt.GCPerOp, pt.GCPauseNsOp, 100*pt.PoolHitRate)
		}
		fmt.Fprintf(w, "alloc reduction %.1fx, bytes reduction %.1fx\n",
			rung.AllocReduction, rung.BytesReduction)
		report.Ladder = append(report.Ladder, rung)
	}

	if lastPool != nil {
		report.Classes = lastPool.DetailedStats().Classes
	}

	if cfg.JSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", cfg.JSONPath, err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
