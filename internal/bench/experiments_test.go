package bench_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"ges/internal/bench"
	"ges/internal/driver"
)

// tinyConfig keeps the smoke test fast.
func tinyConfig() bench.Config {
	return bench.Config{
		SFs:         []float64{0.03},
		Runs:        3,
		MixOps:      60,
		Workers:     2,
		TraceFor:    300 * time.Millisecond,
		TraceBucket: 100 * time.Millisecond,
		Seed:        1,
	}
}

// TestEveryExperimentRuns executes the eleven table/figure reproductions
// plus the morsel-runtime experiment at tiny scale and sanity-checks their
// output shape.
func TestEveryExperimentRuns(t *testing.T) {
	wantFragments := map[string]string{
		"table1":   "persons",
		"fig2":     "IC14",
		"fig3":     "Expand",
		"fig11":    "GES_f*",
		"fig12":    "p99.9",
		"table2":   "R.R.",
		"table3":   "GES_f",
		"fig13":    "workers",
		"fig14":    "IC/s",
		"fig15":    "volcano",
		"table4":   "volcano",
		"parallel": "hit rate",
		"gather":   "read path",
		"csr":      "triangle closure",
		"wcoj":     "cross-check",
		"planner":  "plan cache",
		"update":   "byte-identical",
		"mem":      "alloc reduction",
	}
	if len(bench.All()) != len(wantFragments) {
		t.Fatalf("registry has %d experiments, want %d (one per table/figure + parallel + gather + csr + wcoj + planner + update + mem)",
			len(bench.All()), len(wantFragments))
	}
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, tinyConfig()); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if out == "" {
				t.Fatalf("%s produced no output", e.ID)
			}
			if frag := wantFragments[e.ID]; !strings.Contains(out, frag) {
				t.Fatalf("%s output missing %q:\n%s", e.ID, frag, out)
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := bench.ByID("fig99"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

// TestFig3ExpandDominates checks the paper's §3.1 claim at reproduction
// scale: in the flat engine's operator breakdown of the long-running
// queries, expansion operators account for the largest share.
func TestFig3ExpandDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("breakdown test skipped in -short")
	}
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.SFs = []float64{0.3}
	cfg.Runs = 5
	e, err := bench.ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	// The paper's claim is that tuple materialization dominates the flat
	// engine: the expansion operators plus the projection that replicates
	// fetched properties through the flat table must account for most of
	// IC9's runtime, and an Expand variant must rank in the top two.
	out := buf.String()
	idx := strings.Index(out, "IC9")
	if idx < 0 {
		t.Fatalf("IC9 missing from breakdown:\n%s", out)
	}
	section := out[idx:]
	if end := strings.Index(section[1:], "IC"); end > 0 {
		section = section[:end+1]
	}
	lines := strings.Split(section, "\n")
	if len(lines) < 3 {
		t.Fatalf("breakdown too short:\n%s", section)
	}
	top2 := lines[1] + lines[2]
	if !strings.Contains(top2, "Expand") {
		t.Fatalf("no Expand variant in IC9's top-2 operators:\n%s", section)
	}
	matPct := 0.0
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		if strings.Contains(name, "Expand") || strings.Contains(name, "Project") {
			var p float64
			fmt.Sscanf(fields[1], "%f%%", &p)
			matPct += p
		}
	}
	if matPct < 50 {
		t.Fatalf("materialization operators only account for %.1f%% of IC9:\n%s", matPct, section)
	}
}

// TestWCOJCrossCheck runs the multiway-intersection determinism sweep at
// small scale: every cyclic pattern must return the identical aggregate
// under every knob ladder point and worker count, and the dataset must
// actually contain matches for the speedup claim to be meaningful.
func TestWCOJCrossCheck(t *testing.T) {
	ds, err := driver.SharedDataset(0.03)
	if err != nil {
		t.Fatal(err)
	}
	ds.Graph.SealCSR()
	counts, err := bench.WCOJCrossCheck(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, pat := range bench.WCOJPatterns {
		if counts[i] <= 0 && pat.Name != "4-clique" {
			t.Errorf("%s: no matches at simSF 0.03", pat.Name)
		}
		t.Logf("%s: %d matches", pat.Name, counts[i])
	}
}
