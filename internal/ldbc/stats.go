package ldbc

import (
	"fmt"
	"math/rand"
)

// Stats summarizes a generated dataset — the analog of the paper's Table 1
// (datasets and statistics).
type Stats struct {
	SF       float64
	Persons  int
	Vertices int
	Edges    int
	Bytes    int
}

// Stats computes dataset statistics.
func (ds *Dataset) Stats() Stats {
	return Stats{
		SF:       ds.Config.SF,
		Persons:  len(ds.Persons),
		Vertices: ds.Graph.NumVertices(),
		Edges:    ds.Graph.NumEdges(),
		Bytes:    ds.Graph.MemBytes(),
	}
}

// String renders one Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("simSF%-5.4g persons=%-8d vertices=%-9d edges=%-10d size=%s",
		s.SF, s.Persons, s.Vertices, s.Edges, FmtBytes(s.Bytes))
}

// FmtBytes renders a byte count in human units.
func FmtBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// ParamGen draws query parameters from the generated data, deterministically
// per seed — the stand-in for SNB's curated substitution parameters.
type ParamGen struct {
	ds  *Dataset
	rng *rand.Rand
}

// NewParamGen returns a parameter generator over the dataset.
func (ds *Dataset) NewParamGen(seed int64) *ParamGen {
	return &ParamGen{ds: ds, rng: rand.New(rand.NewSource(seed ^ 0x706172616d73))}
}

// PersonExt picks a random person external ID.
func (p *ParamGen) PersonExt() int64 {
	return int64(p.rng.Intn(len(p.ds.Persons)) + 1)
}

// MessageExt picks a random message and reports whether it is a post.
func (p *ParamGen) MessageExt() (ext int64, isPost bool) {
	if p.rng.Intn(2) == 0 && len(p.ds.Posts) > 0 {
		return int64(p.rng.Intn(len(p.ds.Posts)) + 1), true
	}
	if len(p.ds.Comments) == 0 {
		return int64(p.rng.Intn(len(p.ds.Posts)) + 1), true
	}
	return int64(p.rng.Intn(len(p.ds.Comments)) + 1), false
}

// PostExt picks a random post external ID.
func (p *ParamGen) PostExt() int64 { return int64(p.rng.Intn(len(p.ds.Posts)) + 1) }

// ForumExt picks a random forum external ID.
func (p *ParamGen) ForumExt() int64 { return int64(p.rng.Intn(len(p.ds.Forums)) + 1) }

// Date picks a random day inside the activity window.
func (p *ParamGen) Date() int64 {
	return int64(DayStart + p.rng.Intn(DayEnd-DayStart))
}

// FirstName picks a first name appearing in the data.
func (p *ParamGen) FirstName() string { return firstNames[p.rng.Intn(len(firstNames))] }

// TagName picks a tag name.
func (p *ParamGen) TagName() string {
	return p.ds.TagNames[zipfIdx(p.rng, len(p.ds.TagNames))]
}

// TagClassName picks a tag class name.
func (p *ParamGen) TagClassName() string { return tagThemes[p.rng.Intn(len(tagThemes))] }

// CountryName picks a country name.
func (p *ParamGen) CountryName() string {
	return p.ds.CountryNames[p.rng.Intn(len(p.ds.CountryNames))]
}

// TwoCountries picks two distinct country names.
func (p *ParamGen) TwoCountries() (string, string) {
	a := p.rng.Intn(len(p.ds.CountryNames))
	b := (a + 1 + p.rng.Intn(len(p.ds.CountryNames)-1)) % len(p.ds.CountryNames)
	return p.ds.CountryNames[a], p.ds.CountryNames[b]
}

// TwoPersons picks two distinct person external IDs.
func (p *ParamGen) TwoPersons() (int64, int64) {
	a := p.rng.Intn(len(p.ds.Persons))
	b := (a + 1 + p.rng.Intn(len(p.ds.Persons)-1)) % len(p.ds.Persons)
	return int64(a + 1), int64(b + 1)
}

// WorkYear picks a workFrom-year threshold.
func (p *ParamGen) WorkYear() int64 { return int64(2000 + p.rng.Intn(12)) }

// Month picks a month 1..12.
func (p *ParamGen) Month() int64 { return int64(1 + p.rng.Intn(12)) }

// NewPersonExt reserves a fresh person external ID for update queries.
func (ds *Dataset) NewPersonExt() int64 { return ds.nextPersonExt.Add(1) }

// NewForumExt reserves a fresh forum external ID.
func (ds *Dataset) NewForumExt() int64 { return ds.nextForumExt.Add(1) }

// NewPostExt reserves a fresh post external ID.
func (ds *Dataset) NewPostExt() int64 { return ds.nextPostExt.Add(1) }

// NewCommentExt reserves a fresh comment external ID.
func (ds *Dataset) NewCommentExt() int64 { return ds.nextCommentExt.Add(1) }

// RandomLanguage picks a post language.
func (p *ParamGen) RandomLanguage() string { return languages[p.rng.Intn(len(languages))] }

// RandomBrowser picks a browser string.
func (p *ParamGen) RandomBrowser() string { return browsers[p.rng.Intn(len(browsers))] }

// RandomContentLength picks a message length.
func (p *ParamGen) RandomContentLength() int64 { return int64(10 + p.rng.Intn(190)) }

// NumCities returns the number of generated cities (city external IDs are
// 1..NumCities).
func (ds *Dataset) NumCities() int { return len(ds.places.cities) }

// Rng exposes the generator's rng for update parameter synthesis.
func (p *ParamGen) Rng() *rand.Rand { return p.rng }
