package ldbc_test

import (
	"math"
	"testing"

	"ges/internal/catalog"
	"ges/internal/ldbc"
	"ges/internal/storage"
)

func gen(t testing.TB, cfg ldbc.Config) *ldbc.Dataset {
	t.Helper()
	ds, err := ldbc.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDeterminism(t *testing.T) {
	a := gen(t, ldbc.Config{SF: 0.05, Seed: 9})
	b := gen(t, ldbc.Config{SF: 0.05, Seed: 9})
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("same seed produced different datasets:\n%v\n%v", sa, sb)
	}
	// Spot-check some structure, not just counts.
	h := a.H
	for _, p := range a.Persons[:10] {
		da := a.Graph.Degree(p, h.Knows, catalog.Out, h.Person)
		db := b.Graph.Degree(p, h.Knows, catalog.Out, h.Person)
		if da != db {
			t.Fatalf("degree of person %d differs: %d vs %d", p, da, db)
		}
	}
	c := gen(t, ldbc.Config{SF: 0.05, Seed: 10})
	if c.Stats() == sa {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestScalingIsRoughlyLinear(t *testing.T) {
	small := gen(t, ldbc.Config{SF: 0.1, Seed: 1}).Stats()
	big := gen(t, ldbc.Config{SF: 0.4, Seed: 1}).Stats()
	ratio := float64(big.Vertices) / float64(small.Vertices)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("4x SF gave %0.1fx vertices (%d -> %d)", ratio, small.Vertices, big.Vertices)
	}
	if big.Edges <= small.Edges*2 {
		t.Fatalf("edges did not scale: %d -> %d", small.Edges, big.Edges)
	}
}

func TestSchemaIntegrity(t *testing.T) {
	ds := gen(t, ldbc.Config{SF: 0.05, Seed: 4})
	h, g := ds.H, ds.Graph

	// Every post has exactly one creator and one container forum.
	for _, post := range ds.Posts {
		if got := g.Degree(post, h.HasCreator, catalog.Out, h.Person); got != 1 {
			t.Fatalf("post has %d creators", got)
		}
		if got := g.Degree(post, h.ContainerOf, catalog.In, h.Forum); got != 1 {
			t.Fatalf("post has %d container forums", got)
		}
		if got := g.Degree(post, h.IsLocatedIn, catalog.Out, h.Country); got != 1 {
			t.Fatalf("post has %d countries", got)
		}
	}
	// Every comment replies to exactly one message and has one creator.
	for _, c := range ds.Comments {
		if got := g.Degree(c, h.ReplyOf, catalog.Out, storage.AnyLabel); got != 1 {
			t.Fatalf("comment has %d reply targets", got)
		}
		if got := g.Degree(c, h.HasCreator, catalog.Out, h.Person); got != 1 {
			t.Fatalf("comment has %d creators", got)
		}
	}
	// KNOWS is symmetric.
	for _, p := range ds.Persons {
		for _, seg := range g.Neighbors(nil, p, h.Knows, catalog.Out, h.Person, false) {
			for _, q := range seg.VIDs {
				back := false
				for _, rseg := range g.Neighbors(nil, q, h.Knows, catalog.Out, h.Person, false) {
					for _, r := range rseg.VIDs {
						if r == p {
							back = true
						}
					}
				}
				if !back {
					t.Fatalf("asymmetric KNOWS %d -> %d", p, q)
				}
			}
		}
	}
	// Comment dates are at or after their parent's date.
	for _, c := range ds.Comments {
		cd := g.Prop(c, h.MCreation).I
		for _, seg := range g.Neighbors(nil, c, h.ReplyOf, catalog.Out, storage.AnyLabel, false) {
			for _, parent := range seg.VIDs {
				pd := g.Prop(parent, h.MCreation).I
				if cd < pd {
					t.Fatalf("reply at day %d precedes parent at day %d", cd, pd)
				}
			}
		}
	}
}

func TestDegreeDistributionIsSkewed(t *testing.T) {
	ds := gen(t, ldbc.Config{SF: 0.3, Seed: 1})
	h, g := ds.H, ds.Graph
	var degs []int
	total := 0
	maxDeg := 0
	for _, p := range ds.Persons {
		d := g.Degree(p, h.Knows, catalog.Out, h.Person)
		degs = append(degs, d)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(total) / float64(len(degs))
	if avg < 5 || avg > 80 {
		t.Fatalf("implausible average knows degree %0.1f", avg)
	}
	// Heavy tail: the max degree should far exceed the average.
	if float64(maxDeg) < 3*avg {
		t.Fatalf("degree distribution not skewed: avg %0.1f max %d", avg, maxDeg)
	}
}

func TestParamGenDrawsValidParams(t *testing.T) {
	ds := gen(t, ldbc.Config{SF: 0.05, Seed: 2})
	pg := ds.NewParamGen(3)
	for i := 0; i < 200; i++ {
		ext := pg.PersonExt()
		if _, ok := ds.Graph.VertexByExt(ds.H.Person, ext); !ok {
			t.Fatalf("PersonExt %d does not resolve", ext)
		}
		msg, isPost := pg.MessageExt()
		label := ds.H.Comment
		if isPost {
			label = ds.H.Post
		}
		if _, ok := ds.Graph.VertexByExt(label, msg); !ok {
			t.Fatalf("MessageExt %d (post=%v) does not resolve", msg, isPost)
		}
		d := pg.Date()
		if d < ldbc.DayStart || d > ldbc.DayEnd {
			t.Fatalf("date %d outside activity window", d)
		}
		a, b := pg.TwoPersons()
		if a == b {
			t.Fatal("TwoPersons drew identical persons")
		}
		x, y := pg.TwoCountries()
		if x == y {
			t.Fatal("TwoCountries drew identical countries")
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
		{int(1.5 * float64(1<<30)), "1.5 GiB"},
	}
	for _, c := range cases {
		if got := ldbc.FmtBytes(c.n); got != c.want {
			t.Errorf("FmtBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestMinimumScaleFactor(t *testing.T) {
	ds := gen(t, ldbc.Config{SF: 0.0001, Seed: 1})
	if len(ds.Persons) < 30 {
		t.Fatalf("tiny SF should clamp persons to 30, got %d", len(ds.Persons))
	}
	if math.IsNaN(float64(ds.Stats().Bytes)) || ds.Stats().Bytes <= 0 {
		t.Fatal("stats broken at minimum scale")
	}
}
