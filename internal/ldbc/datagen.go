package ldbc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/sched"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Config parameterizes generation. SF is the simulated scale factor: the
// person count (and everything downstream) scales linearly with it.
type Config struct {
	SF   float64
	Seed int64

	// Knobs with sensible SNB-shaped defaults (0 = default).
	AvgKnowsDegree  int // default 14
	PostsPerForum   int // default 10 (mean)
	CommentsPerPost int // default 2 (mean of geometric)
	LikesPerMessage int // default 1 (mean of geometric)
	TagsPerPerson   int // default 5
	MembersPerForum int // default 12 (mean, zipf-skewed)
}

func (c *Config) defaults() {
	if c.AvgKnowsDegree == 0 {
		c.AvgKnowsDegree = 14
	}
	if c.PostsPerForum == 0 {
		c.PostsPerForum = 10
	}
	if c.CommentsPerPost == 0 {
		c.CommentsPerPost = 2
	}
	if c.LikesPerMessage == 0 {
		c.LikesPerMessage = 1
	}
	if c.TagsPerPerson == 0 {
		c.TagsPerPerson = 5
	}
	if c.MembersPerForum == 0 {
		c.MembersPerForum = 12
	}
}

// Persons returns the person cardinality for the scale factor (≈1.1k at
// simSF=1, mirroring SNB's 11k at SF1 divided by ten).
func (c Config) Persons() int {
	n := int(1100 * c.SF)
	if n < 30 {
		n = 30
	}
	return n
}

// Dataset is a generated SNB-like social network plus the handles and
// parameter pools the workload needs.
type Dataset struct {
	Config Config
	H      *Handles
	Graph  *storage.Graph

	Persons  []vector.VID
	Posts    []vector.VID
	Comments []vector.VID
	Forums   []vector.VID

	TagNames     []string
	CountryNames []string

	places *placeIDs
	tags   []vector.VID

	// Monotonic external-ID wells for update queries.
	nextPersonExt  atomic.Int64
	nextForumExt   atomic.Int64
	nextPostExt    atomic.Int64
	nextCommentExt atomic.Int64
}

var (
	firstNames = []string{"Jan", "Jun", "Ali", "Ana", "Bob", "Carmen", "Chen", "Deepa", "Emil",
		"Eva", "Finn", "Gita", "Hans", "Ines", "Ivan", "Joao", "Kira", "Lars", "Lin", "Mara",
		"Nina", "Omar", "Pia", "Qing", "Rahul", "Sara", "Tim", "Uma", "Vlad", "Wei",
		"Xin", "Yara", "Zoe", "Ada", "Bill", "Cleo", "Dora", "Egon", "Faye", "Gus"}
	lastNames = []string{"Smith", "Garcia", "Mueller", "Chen", "Kumar", "Silva", "Rossi",
		"Novak", "Tanaka", "Kim", "Olsen", "Dubois", "Khan", "Lopez", "Popov", "Sato",
		"Yang", "Costa", "Berg", "Fischer"}
	continentNames = []string{"Asia", "Europe", "Africa", "Americas", "Oceania", "Antarctica"}
	countrySeeds   = []string{"India", "China", "Germany", "France", "Brazil", "Italy", "Japan",
		"Norway", "Egypt", "Kenya", "Canada", "Mexico", "Peru", "Chile", "Spain", "Poland",
		"Vietnam", "Korea", "Australia", "Fiji", "Ghana", "Austria", "Denmark", "Portugal"}
	browsers  = []string{"Chrome", "Firefox", "Safari", "Edge", "Opera"}
	languages = []string{"en", "de", "fr", "es", "zh", "pt", "hi"}
	tagThemes = []string{"rock", "jazz", "football", "chess", "physics", "poetry", "cinema",
		"history", "cooking", "travel", "biology", "painting"}
)

// Generate builds the dataset deterministically from the config.
func Generate(cfg Config) (*Dataset, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6765736c64626331)) // "gesldbc1"
	h := NewHandles()
	g := storage.NewGraph(h.Cat)
	ds := &Dataset{Config: cfg, H: h, Graph: g}

	if err := ds.genPlaces(rng); err != nil {
		return nil, err
	}
	if err := ds.genTags(rng); err != nil {
		return nil, err
	}
	if err := ds.genPersons(rng); err != nil {
		return nil, err
	}
	if err := ds.genKnows(rng); err != nil {
		return nil, err
	}
	if err := ds.genForums(rng); err != nil {
		return nil, err
	}
	if err := ds.genLikes(rng); err != nil {
		return nil, err
	}

	// Bulk-load leaves relocated adjacency slots behind; reclaim families
	// past the dead-fraction threshold, then seal every family into its
	// sorted CSR snapshot so queries run on the read-optimized layout.
	g.CompactAdjacency()
	g.SealCSR()
	// Post-seal edge mutations land in delta overlays; route the resulting
	// background family reseals through the shared worker pool so they
	// never run on a mutator's critical path.
	g.SetResealSubmit(sched.Global().Submit)

	// The wells hold the current maximum; NewXExt pre-increments.
	ds.nextPersonExt.Store(int64(len(ds.Persons)))
	ds.nextForumExt.Store(int64(len(ds.Forums)))
	ds.nextPostExt.Store(int64(len(ds.Posts)))
	ds.nextCommentExt.Store(int64(len(ds.Comments)))
	return ds, nil
}

type placeIDs struct {
	cities       []vector.VID
	countries    []vector.VID
	universities []vector.VID
	companies    []vector.VID
}

func (ds *Dataset) genPlaces(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	ds.places = &placeIDs{}
	continents := make([]vector.VID, len(continentNames))
	for i, n := range continentNames {
		v, err := g.AddVertex(h.Continent, int64(i+1), vector.String_(n))
		if err != nil {
			return err
		}
		continents[i] = v
	}
	for i, n := range countrySeeds {
		c, err := g.AddVertex(h.Country, int64(i+1), vector.String_(n))
		if err != nil {
			return err
		}
		ds.places.countries = append(ds.places.countries, c)
		ds.CountryNames = append(ds.CountryNames, n)
		if err := g.AddEdge(h.IsPartOf, c, continents[i%len(continents)]); err != nil {
			return err
		}
		for k := 0; k < 4; k++ {
			city, err := g.AddVertex(h.City, int64(i*4+k+1), vector.String_(fmt.Sprintf("%s-City%d", n, k)))
			if err != nil {
				return err
			}
			ds.places.cities = append(ds.places.cities, city)
			if err := g.AddEdge(h.IsPartOf, city, c); err != nil {
				return err
			}
		}
		for k := 0; k < 2; k++ {
			u, err := g.AddVertex(h.University, int64(i*2+k+1), vector.String_(fmt.Sprintf("%s-Uni%d", n, k)))
			if err != nil {
				return err
			}
			ds.places.universities = append(ds.places.universities, u)
			if err := g.AddEdge(h.IsLocatedIn, u, c); err != nil {
				return err
			}
		}
		for k := 0; k < 3; k++ {
			co, err := g.AddVertex(h.Company, int64(i*3+k+1), vector.String_(fmt.Sprintf("%s-Corp%d", n, k)))
			if err != nil {
				return err
			}
			ds.places.companies = append(ds.places.companies, co)
			if err := g.AddEdge(h.IsLocatedIn, co, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ds *Dataset) genTags(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	classes := make([]vector.VID, len(tagThemes))
	for i, n := range tagThemes {
		v, err := g.AddVertex(h.TagClass, int64(i+1), vector.String_(n))
		if err != nil {
			return err
		}
		classes[i] = v
	}
	nTags := 50 + ds.Config.Persons()/4
	for i := 0; i < nTags; i++ {
		theme := tagThemes[i%len(tagThemes)]
		name := fmt.Sprintf("%s-%d", theme, i/len(tagThemes))
		v, err := g.AddVertex(h.Tag, int64(i+1), vector.String_(name))
		if err != nil {
			return err
		}
		ds.tags = append(ds.tags, v)
		ds.TagNames = append(ds.TagNames, name)
		if err := g.AddEdge(h.HasType, v, classes[i%len(classes)]); err != nil {
			return err
		}
	}
	return nil
}

// zipfIdx draws a zipf-skewed index in [0,n).
func zipfIdx(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-power sampling, exponent ~1.3.
	u := rng.Float64()
	i := int(float64(n) * (1 - u*u*u))
	if i >= n {
		i = n - 1
	}
	return i
}

func (ds *Dataset) genPersons(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	n := ds.Config.Persons()
	for i := 0; i < n; i++ {
		gender := "male"
		if rng.Intn(2) == 0 {
			gender = "female"
		}
		city := ds.places.cities[rng.Intn(len(ds.places.cities))]
		v, err := g.AddVertex(h.Person, int64(i+1),
			vector.String_(firstNames[rng.Intn(len(firstNames))]),
			vector.String_(lastNames[rng.Intn(len(lastNames))]),
			vector.String_(gender),
			vector.Date(int64(rng.Intn(12000))), // birthday 1970..2002
			vector.Date(int64(DayStart+rng.Intn(DayEnd-DayStart))),
			vector.String_(fmt.Sprintf("77.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256))),
			vector.String_(browsers[rng.Intn(len(browsers))]),
		)
		if err != nil {
			return err
		}
		ds.Persons = append(ds.Persons, v)
		if err := g.AddEdge(h.IsLocatedIn, v, city); err != nil {
			return err
		}
		// Interests.
		for k := 0; k < ds.Config.TagsPerPerson; k++ {
			tag := ds.tags[zipfIdx(rng, len(ds.tags))]
			_ = g.AddEdge(h.HasInterest, v, tag) //geslint:err-ok duplicate interests are harmless; the generator retries nothing
		}
		// Education and employment.
		if rng.Intn(3) > 0 {
			u := ds.places.universities[rng.Intn(len(ds.places.universities))]
			if err := g.AddEdge(h.StudyAt, v, u, vector.Int64(int64(1990+rng.Intn(23)))); err != nil {
				return err
			}
		}
		for k := 0; k < rng.Intn(3); k++ {
			c := ds.places.companies[rng.Intn(len(ds.places.companies))]
			if err := g.AddEdge(h.WorkAt, v, c, vector.Int64(int64(1995+rng.Intn(18)))); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ds *Dataset) genKnows(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	n := len(ds.Persons)
	type edge struct{ a, b int }
	seen := make(map[edge]bool)
	addKnows := func(a, b int) error {
		if a == b {
			return nil
		}
		if a > b {
			a, b = b, a
		}
		if seen[edge{a, b}] {
			return nil
		}
		seen[edge{a, b}] = true
		d := vector.Date(int64(DayStart + rng.Intn(DayEnd-DayStart)))
		if err := g.AddEdge(h.Knows, ds.Persons[a], ds.Persons[b], d); err != nil {
			return err
		}
		return g.AddEdge(h.Knows, ds.Persons[b], ds.Persons[a], d)
	}
	// Power-law degrees: a zipf-skew over targets plus locality bias gives
	// the community structure multi-hop queries feel.
	for i := 0; i < n; i++ {
		deg := 1 + zipfDegree(rng, ds.Config.AvgKnowsDegree)
		for k := 0; k < deg; k++ {
			var j int
			if rng.Intn(3) > 0 {
				// Local link: nearby index (a proxy for community).
				off := 1 + rng.Intn(20)
				if rng.Intn(2) == 0 {
					off = -off
				}
				j = (i + off + n) % n
			} else {
				// Global link, biased to early (popular) persons.
				j = zipfIdx(rng, n)
			}
			if err := addKnows(i, j); err != nil {
				return err
			}
		}
	}
	return nil
}

// zipfDegree draws from a heavy-tailed degree distribution with roughly the
// requested mean.
func zipfDegree(rng *rand.Rand, mean int) int {
	// Pareto-ish: mean * u^-0.5 has infinite variance; clamp.
	u := rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	d := int(float64(mean) * 0.6 / (u + 0.08))
	if d > mean*20 {
		d = mean * 20
	}
	if d < 1 {
		d = 1
	}
	return d
}

func (ds *Dataset) genForums(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	nForums := len(ds.Persons)
	postExt, commentExt := int64(1), int64(1)
	for i := 0; i < nForums; i++ {
		mod := ds.Persons[rng.Intn(len(ds.Persons))]
		forum, err := g.AddVertex(h.Forum, int64(i+1),
			vector.String_(fmt.Sprintf("Forum %d of %s", i+1, tagThemes[i%len(tagThemes)])),
			vector.Date(int64(DayStart+rng.Intn(365))),
		)
		if err != nil {
			return err
		}
		ds.Forums = append(ds.Forums, forum)
		if err := g.AddEdge(h.HasModerator, forum, mod); err != nil {
			return err
		}
		theme := ds.tags[zipfIdx(rng, len(ds.tags))]
		if err := g.AddEdge(h.HasTag, forum, theme); err != nil {
			return err
		}

		// Membership: moderator's friends plus zipf-skewed randoms.
		members := map[vector.VID]bool{mod: true}
		for _, seg := range g.Neighbors(nil, mod, h.Knows, catalog.Out, h.Person, false) {
			for _, f := range seg.VIDs {
				if rng.Intn(2) == 0 {
					members[f] = true
				}
			}
		}
		extra := zipfDegree(rng, ds.Config.MembersPerForum/2)
		for k := 0; k < extra; k++ {
			members[ds.Persons[zipfIdx(rng, len(ds.Persons))]] = true
		}
		memberList := make([]vector.VID, 0, len(members))
		for m := range members {
			memberList = append(memberList, m)
		}
		// map order is random but the content is deterministic; sort for
		// reproducibility.
		sortVIDs(memberList)
		for _, m := range memberList {
			join := vector.Date(int64(DayStart + rng.Intn(DayEnd-DayStart)))
			if err := g.AddEdge(h.HasMember, forum, m, join); err != nil {
				return err
			}
		}

		// Posts by members; replies form trees under each post.
		nPosts := poisson(rng, float64(ds.Config.PostsPerForum))
		for p := 0; p < nPosts; p++ {
			author := memberList[rng.Intn(len(memberList))]
			created := int64(DayStart + rng.Intn(DayEnd-DayStart))
			length := 20 + zipfDegree(rng, 40)
			post, err := g.AddVertex(h.Post, postExt,
				vector.String_(fmt.Sprintf("post %d", postExt)),
				vector.Int64(int64(length)),
				vector.Date(created),
				vector.String_(browsers[rng.Intn(len(browsers))]),
				vector.String_("77.0.0.1"),
				vector.String_(languages[rng.Intn(len(languages))]),
			)
			if err != nil {
				return err
			}
			postExt++
			ds.Posts = append(ds.Posts, post)
			if err := g.AddEdge(h.HasCreator, post, author); err != nil {
				return err
			}
			if err := g.AddEdge(h.ContainerOf, forum, post); err != nil {
				return err
			}
			if err := g.AddEdge(h.HasTag, post, theme); err != nil {
				return err
			}
			if rng.Intn(2) == 0 {
				if err := g.AddEdge(h.HasTag, post, ds.tags[zipfIdx(rng, len(ds.tags))]); err != nil {
					return err
				}
			}
			country := ds.places.countries[rng.Intn(len(ds.places.countries))]
			if err := g.AddEdge(h.IsLocatedIn, post, country); err != nil {
				return err
			}

			// Reply tree.
			parents := []vector.VID{post}
			parentDates := []int64{created}
			nComments := poisson(rng, float64(ds.Config.CommentsPerPost))
			for cI := 0; cI < nComments; cI++ {
				pi := rng.Intn(len(parents))
				commAuthor := memberList[rng.Intn(len(memberList))]
				cDate := parentDates[pi] + int64(rng.Intn(30)+1)
				if cDate > DayEnd {
					cDate = DayEnd
				}
				comm, err := g.AddVertex(h.Comment, commentExt,
					vector.String_(fmt.Sprintf("reply %d", commentExt)),
					vector.Int64(int64(10+zipfDegree(rng, 20))),
					vector.Date(cDate),
					vector.String_(browsers[rng.Intn(len(browsers))]),
					vector.String_("77.0.0.2"),
				)
				if err != nil {
					return err
				}
				commentExt++
				ds.Comments = append(ds.Comments, comm)
				if err := g.AddEdge(h.HasCreator, comm, commAuthor); err != nil {
					return err
				}
				if err := g.AddEdge(h.ReplyOf, comm, parents[pi]); err != nil {
					return err
				}
				country := ds.places.countries[rng.Intn(len(ds.places.countries))]
				if err := g.AddEdge(h.IsLocatedIn, comm, country); err != nil {
					return err
				}
				parents = append(parents, comm)
				parentDates = append(parentDates, cDate)
			}
		}
	}
	return nil
}

func (ds *Dataset) genLikes(rng *rand.Rand) error {
	h, g := ds.H, ds.Graph
	like := func(msg vector.VID, when int64) error {
		// Likers: friends of the creator, falling back to random persons.
		var creator vector.VID = vector.NilVID
		for _, seg := range g.Neighbors(nil, msg, h.HasCreator, catalog.Out, h.Person, false) {
			if len(seg.VIDs) > 0 {
				creator = seg.VIDs[0]
			}
		}
		n := poisson(rng, float64(ds.Config.LikesPerMessage))
		var candidates []vector.VID
		if creator != vector.NilVID {
			for _, seg := range g.Neighbors(nil, creator, h.Knows, catalog.Out, h.Person, false) {
				candidates = append(candidates, seg.VIDs...)
			}
		}
		seen := map[vector.VID]bool{}
		for k := 0; k < n; k++ {
			var liker vector.VID
			if len(candidates) > 0 && rng.Intn(4) > 0 {
				liker = candidates[rng.Intn(len(candidates))]
			} else {
				liker = ds.Persons[zipfIdx(rng, len(ds.Persons))]
			}
			if seen[liker] {
				continue
			}
			seen[liker] = true
			d := when + int64(rng.Intn(60)+1)
			if d > DayEnd {
				d = DayEnd
			}
			if err := g.AddEdge(h.Likes, liker, msg, vector.Date(d)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range ds.Posts {
		if err := like(p, g.Prop(p, ds.H.MCreation).I); err != nil {
			return err
		}
	}
	for _, c := range ds.Comments {
		if err := like(c, g.Prop(c, ds.H.MCreation).I); err != nil {
			return err
		}
	}
	return nil
}

// poisson draws a Poisson-distributed count (Knuth's method; means here are
// small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := 1.0
	for i := 0; i < 700; i++ {
		l *= rng.Float64()
		if l < expNeg(mean) {
			return i
		}
	}
	return int(mean)
}

func expNeg(x float64) float64 { return math.Exp(-x) }

// sortVIDs orders a VID slice ascending (generation determinism).
func sortVIDs(v []vector.VID) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
