// Package ldbc provides the LDBC SNB Interactive substrate of the paper's
// evaluation (§2.2, §6): the social-network schema, a deterministic scaled-
// down data generator ("simulated scale factors"), dataset statistics
// (Table 1), and parameter curation for the query workload.
//
// Substitution note (see DESIGN.md): the official Hadoop-based Datagen and
// multi-hundred-gigabyte scale factors are replaced by an in-process
// generator that reproduces the *shape* of SNB data — power-law KNOWS
// degrees, forum/membership skew, message reply trees, tag and place
// hierarchies — at laptop scale. simSF=1 ≈ 1.1k persons (the paper's SF1 has
// 11k persons at ~4M vertices; simSF scales every cardinality down by ~10×
// on persons and proportionally elsewhere).
package ldbc

import (
	"ges/internal/catalog"
	"ges/internal/vector"
)

// Handles bundles every catalog ID of the SNB schema.
type Handles struct {
	Cat *catalog.Catalog

	// Labels.
	Person, Post, Comment, Forum, Tag, TagClass catalog.LabelID
	City, Country, Continent                    catalog.LabelID
	University, Company                         catalog.LabelID

	// Edge types.
	Knows, HasCreator, Likes, ReplyOf, ContainerOf catalog.EdgeTypeID
	HasMember, HasModerator, HasTag, HasInterest   catalog.EdgeTypeID
	IsLocatedIn, IsPartOf, HasType                 catalog.EdgeTypeID
	StudyAt, WorkAt                                catalog.EdgeTypeID

	// Person property IDs.
	PFirstName, PLastName, PGender, PBirthday, PCreation, PLocationIP, PBrowser catalog.PropID
	// Message (Post/Comment share a layout) property IDs.
	MContent, MLength, MCreation, MBrowser, MLocationIP catalog.PropID
	// Post-only extra property.
	PostLanguage catalog.PropID
	// Forum property IDs.
	FTitle, FCreation catalog.PropID
	// Name property (Tag, TagClass, places, organisations all use slot 0).
	NameProp catalog.PropID
}

// NewHandles registers the SNB schema on a fresh catalog.
func NewHandles() *Handles {
	cat := catalog.New()
	h := &Handles{Cat: cat}

	str := func(n string) catalog.PropDef { return catalog.PropDef{Name: n, Kind: vector.KindString} }
	date := func(n string) catalog.PropDef { return catalog.PropDef{Name: n, Kind: vector.KindDate} }
	i64 := func(n string) catalog.PropDef { return catalog.PropDef{Name: n, Kind: vector.KindInt64} }

	h.Person = catalog.Must(cat.AddLabel("Person",
		str("firstName"), str("lastName"), str("gender"),
		date("birthday"), date("creationDate"), str("locationIP"), str("browserUsed")))
	h.PFirstName, h.PLastName, h.PGender, h.PBirthday, h.PCreation, h.PLocationIP, h.PBrowser =
		0, 1, 2, 3, 4, 5, 6

	// Post and Comment share the first five property slots so that
	// Message-supertype queries project them uniformly.
	h.Post = catalog.Must(cat.AddLabel("Post",
		str("content"), i64("length"), date("creationDate"), str("browserUsed"), str("locationIP"),
		str("language")))
	h.Comment = catalog.Must(cat.AddLabel("Comment",
		str("content"), i64("length"), date("creationDate"), str("browserUsed"), str("locationIP")))
	h.MContent, h.MLength, h.MCreation, h.MBrowser, h.MLocationIP = 0, 1, 2, 3, 4
	h.PostLanguage = 5

	h.Forum = catalog.Must(cat.AddLabel("Forum", str("title"), date("creationDate")))
	h.FTitle, h.FCreation = 0, 1

	h.Tag = catalog.Must(cat.AddLabel("Tag", str("name")))
	h.TagClass = catalog.Must(cat.AddLabel("TagClass", str("name")))
	h.City = catalog.Must(cat.AddLabel("City", str("name")))
	h.Country = catalog.Must(cat.AddLabel("Country", str("name")))
	h.Continent = catalog.Must(cat.AddLabel("Continent", str("name")))
	h.University = catalog.Must(cat.AddLabel("University", str("name")))
	h.Company = catalog.Must(cat.AddLabel("Company", str("name")))
	h.NameProp = 0

	h.Knows = catalog.Must(cat.AddEdgeType("KNOWS", date("creationDate")))
	h.HasCreator = catalog.Must(cat.AddEdgeType("HAS_CREATOR"))
	h.Likes = catalog.Must(cat.AddEdgeType("LIKES", date("creationDate")))
	h.ReplyOf = catalog.Must(cat.AddEdgeType("REPLY_OF"))
	h.ContainerOf = catalog.Must(cat.AddEdgeType("CONTAINER_OF"))
	h.HasMember = catalog.Must(cat.AddEdgeType("HAS_MEMBER", date("joinDate")))
	h.HasModerator = catalog.Must(cat.AddEdgeType("HAS_MODERATOR"))
	h.HasTag = catalog.Must(cat.AddEdgeType("HAS_TAG"))
	h.HasInterest = catalog.Must(cat.AddEdgeType("HAS_INTEREST"))
	h.IsLocatedIn = catalog.Must(cat.AddEdgeType("IS_LOCATED_IN"))
	h.IsPartOf = catalog.Must(cat.AddEdgeType("IS_PART_OF"))
	h.HasType = catalog.Must(cat.AddEdgeType("HAS_TYPE"))
	h.StudyAt = catalog.Must(cat.AddEdgeType("STUDY_AT", i64("classYear")))
	h.WorkAt = catalog.Must(cat.AddEdgeType("WORK_AT", i64("workFrom")))
	return h
}

// Epoch date helpers: dates are stored as days since the Unix epoch. The
// simulated network runs 2010-01-01 .. 2012-12-31, like SNB's activity
// window.
const (
	DayStart = 14610 // 2010-01-01
	DayEnd   = 15705 // 2012-12-31
)
