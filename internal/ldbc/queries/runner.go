package queries

import (
	"fmt"
	"time"

	"ges/internal/core"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/txn"
)

// Engine abstracts plan execution so the workload can run on either the
// GES engine (exec.Engine, in any of its three variant modes) or the
// tuple-at-a-time volcano comparison engine.
type Engine interface {
	Run(view storage.View, p plan.Plan) (*exec.Result, error)
}

// Runner executes workload queries against one dataset: plan queries run
// through the engine, stored procedures run directly over a snapshot, and
// updates run through the transaction manager. A Runner is safe for
// concurrent use — the engine and manager are; per-call state is local.
type Runner struct {
	DS     *ldbc.Dataset
	Mgr    *txn.Manager
	Engine Engine
}

// NewRunner wires a runner for the dataset in the given engine mode. When
// mgr is nil a fresh transaction manager is created over the dataset's
// graph.
func NewRunner(ds *ldbc.Dataset, mode exec.Mode, mgr *txn.Manager) *Runner {
	return NewRunnerWith(ds, exec.New(mode), mgr)
}

// NewRunnerWith wires a runner around an explicit engine implementation.
func NewRunnerWith(ds *ldbc.Dataset, eng Engine, mgr *txn.Manager) *Runner {
	if mgr == nil {
		mgr = txn.NewManager(ds.Graph)
	}
	return &Runner{DS: ds, Mgr: mgr, Engine: eng}
}

// view returns the read view for a query: the latest snapshot when any
// transaction has committed, otherwise the base graph (zero overhead).
func (r *Runner) view() storage.View {
	if _, ver := r.Mgr.Stats(); ver > 0 {
		return r.Mgr.Snapshot()
	}
	return r.DS.Graph
}

// Execute runs one query invocation and returns its result block (nil for
// updates) and the engine result when a plan was executed.
func (r *Runner) Execute(q *Query, p Params) (*core.FlatBlock, *exec.Result, error) {
	switch {
	case q.Build != nil:
		res, err := r.Engine.Run(r.view(), q.Build(r.DS.H, p))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		return res.Block, res, nil
	case q.Proc != nil:
		start := time.Now()
		fb, err := q.Proc(r.view(), r.DS.H, p)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		return fb, &exec.Result{Block: fb, Duration: time.Since(start), PeakMem: fb.MemBytes()}, nil
	case q.Update != nil:
		start := time.Now()
		if err := q.Update(r.Mgr, r.DS, p); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		return nil, &exec.Result{Duration: time.Since(start)}, nil
	default:
		return nil, nil, fmt.Errorf("%s: query has no implementation", q.Name)
	}
}
