package queries

import (
	"ges/internal/catalog"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Shared plan fragments.

func seekPerson(h *ldbc.Handles, ext int64) op.Operator {
	return &op.NodeByIdSeek{Var: "p", Label: h.Person, ExtID: ext}
}

func friends(h *ldbc.Handles, from, to string, minHops, maxHops int) op.Operator {
	return &op.VarLengthExpand{From: from, To: to, Et: h.Knows, Dir: catalog.Out,
		DstLabel: h.Person, MinHops: minHops, MaxHops: maxHops, Distinct: true}
}

func personCols(v string) *op.ProjectProps {
	return &op.ProjectProps{Specs: []op.ProjSpec{
		{Var: v, As: v + ".id", ExtID: true},
		{Var: v, Prop: "firstName", As: v + ".firstName"},
		{Var: v, Prop: "lastName", As: v + ".lastName"},
	}}
}

// IC1 — friends (up to 3 hops) with a given first name, their profile,
// ordered by last name and id. (SNB additionally orders by hop distance;
// distance bookkeeping is omitted — the traversal and filter shape is
// unchanged.)
var IC1 = register(&Query{
	Name: "IC1", Kind: IC, Freq: 26,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId":  vector.Int64(pg.PersonExt()),
			"firstName": vector.String_(pg.FirstName()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "f", 1, 3),
			personCols("f"),
			&op.Filter{Pred: expr.Eq(expr.C("f.firstName"), expr.LStr(p.Str("firstName")))},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "f", Prop: "birthday", As: "f.birthday"},
				{Var: "f", Prop: "browserUsed", As: "f.browser"},
			}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "f.lastName"}, {Col: "f.id"}},
				Limit: 20,
				Cols:  []string{"f.id", "f.lastName", "f.birthday", "f.browser"},
			},
		}
	},
})

// IC2 — recent messages (creationDate <= D) by direct friends, newest
// first, top 20.
var IC2 = register(&Query{
	Name: "IC2", Kind: IC, Freq: 37,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"maxDate":  vector.Date(pg.Date()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			personCols("f"),
			&op.Expand{From: "f", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "msg", Prop: "creationDate", As: "msg.creationDate"},
				{Var: "msg", As: "msg.id", ExtID: true},
				{Var: "msg", Prop: "content", As: "msg.content"},
			}},
			&op.Filter{Pred: expr.Le(expr.C("msg.creationDate"), expr.LDate(p.Int("maxDate")))},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "msg.creationDate", Desc: true}, {Col: "msg.id"}},
				Limit: 20,
				Cols:  []string{"f.id", "f.firstName", "f.lastName", "msg.id", "msg.content", "msg.creationDate"},
			},
		}
	},
})

// countryMessageCounts counts, per friend, messages located in one country —
// one side of IC3's pivot join.
func countryMessageCounts(h *ldbc.Handles, personID int64, country, cntCol string) []op.Operator {
	return []op.Operator{
		seekPerson(h, personID),
		friends(h, "p", "f", 1, 2),
		&op.Expand{From: "f", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
		&op.Expand{From: "msg", To: "ctry", Et: h.IsLocatedIn, Dir: catalog.Out, DstLabel: h.Country},
		&op.ProjectProps{Specs: []op.ProjSpec{
			{Var: "ctry", Prop: "name", As: "ctry.name"},
			{Var: "f", As: "f.id", ExtID: true},
		}},
		&op.Filter{Pred: expr.Eq(expr.C("ctry.name"), expr.LStr(country))},
		&op.Aggregate{GroupBy: []string{"f.id"}, Aggs: []op.AggSpec{{Func: op.Count, As: cntCol}}},
	}
}

// IC3 — friends (1..2 hops) with messages in two given countries: the
// per-country counts correlate through the friend, a cyclic shape resolved
// with a hash join — the class of query the paper reports as gaining
// nothing from factorization (Table 2: IC3 R.R. ≈ 0).
var IC3 = register(&Query{
	Name: "IC3", Kind: IC, Freq: 12,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		x, y := pg.TwoCountries()
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"countryX": vector.String_(x),
			"countryY": vector.String_(y),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		left := countryMessageCounts(h, p.Int("personId"), p.Str("countryX"), "xCount")
		right := countryMessageCounts(h, p.Int("personId"), p.Str("countryY"), "yCount")
		// Rename the right key to avoid collision after the join.
		right = append(right, &op.ProjectExpr{Expr: expr.C("f.id"), As: "fy.id", Kind: vector.KindInt64},
			&op.Defactor{Cols: []string{"fy.id", "yCount"}})
		pl := plan.Plan(left)
		pl = append(pl,
			&op.HashJoin{Type: op.Inner, LeftKeys: []string{"f.id"}, RightKeys: []string{"fy.id"}, Right: right},
			&op.ProjectExpr{Expr: expr.Arith{Op: expr.Add, L: expr.C("xCount"), R: expr.C("yCount")},
				As: "total", Kind: vector.KindInt64},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "total", Desc: true}, {Col: "f.id"}},
				Limit: 20,
				Cols:  []string{"f.id", "xCount", "yCount", "total"},
			},
		)
		return pl
	},
})

// IC4 — tags of posts created by friends within a date window that never
// appeared on their earlier posts, counted and ranked.
var IC4 = register(&Query{
	Name: "IC4", Kind: IC, Freq: 36,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		start := pg.Date()
		return Params{
			"personId":  vector.Int64(pg.PersonExt()),
			"startDate": vector.Date(start),
			"endDate":   vector.Date(start + 30),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		oldTags := []op.Operator{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.Expand{From: "f", To: "post", Et: h.HasCreator, Dir: catalog.In, DstLabel: h.Post},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "post", Prop: "creationDate", As: "post.creationDate"}}},
			&op.Filter{Pred: expr.Lt(expr.C("post.creationDate"), expr.LDate(p.Int("startDate")))},
			&op.Expand{From: "post", To: "tOld", Et: h.HasTag, Dir: catalog.Out, DstLabel: h.Tag},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "tOld", Prop: "name", As: "tOld.name"}}},
			&op.Distinct{Cols: []string{"tOld.name"}},
		}
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.Expand{From: "f", To: "post", Et: h.HasCreator, Dir: catalog.In, DstLabel: h.Post},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "post", Prop: "creationDate", As: "post.creationDate"}}},
			&op.Filter{Pred: expr.And{
				L: expr.Ge(expr.C("post.creationDate"), expr.LDate(p.Int("startDate"))),
				R: expr.Lt(expr.C("post.creationDate"), expr.LDate(p.Int("endDate"))),
			}},
			&op.Expand{From: "post", To: "t", Et: h.HasTag, Dir: catalog.Out, DstLabel: h.Tag},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "t", Prop: "name", As: "t.name"}}},
			&op.Aggregate{GroupBy: []string{"t.name"}, Aggs: []op.AggSpec{{Func: op.Count, As: "postCount"}}},
			&op.HashJoin{Type: op.LeftAnti, LeftKeys: []string{"t.name"}, RightKeys: []string{"tOld.name"}, Right: oldTags},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "postCount", Desc: true}, {Col: "t.name"}},
				Limit: 10,
			},
		}
	},
})

// IC5 — forums that friends (1..2 hops) joined after a date, ranked by the
// number of contained posts: the paper's flagship AggregateProjectTop case
// (Table 2 collapses from hundreds of MB to ~1.6 KB under fusion). SNB
// counts only posts authored by those friends; counting all contained posts
// preserves the expansion fan-out and the aggregation choke point without
// the cyclic correlation.
var IC5 = register(&Query{
	Name: "IC5", Kind: IC, Freq: 9,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"minDate":  vector.Date(pg.Date()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "f", 1, 2),
			&op.Expand{From: "f", To: "forum", Et: h.HasMember, Dir: catalog.In, DstLabel: h.Forum,
				EdgeProps: []op.EdgeProj{{Prop: "joinDate", As: "joinDate"}}},
			&op.Filter{Pred: expr.Gt(expr.C("joinDate"), expr.LDate(p.Int("minDate")))},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "forum", As: "forum.id", ExtID: true}}},
			&op.Expand{From: "forum", To: "post", Et: h.ContainerOf, Dir: catalog.Out, DstLabel: h.Post},
			&op.Aggregate{GroupBy: []string{"forum.id"}, Aggs: []op.AggSpec{{Func: op.Count, As: "postCount"}}},
			&op.OrderBy{Keys: []op.SortKey{{Col: "postCount", Desc: true}, {Col: "forum.id"}}, Limit: 20},
		}
	},
})

// IC6 — tags co-occurring with a given tag on posts by friends (1..2 hops):
// a genuinely multi-branch f-Tree (the post node carries two tag children).
var IC6 = register(&Query{
	Name: "IC6", Kind: IC, Freq: 16,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"tagName":  vector.String_(pg.TagName()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "f", 1, 2),
			&op.Expand{From: "f", To: "post", Et: h.HasCreator, Dir: catalog.In, DstLabel: h.Post},
			&op.Expand{From: "post", To: "t1", Et: h.HasTag, Dir: catalog.Out, DstLabel: h.Tag},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "t1", Prop: "name", As: "t1.name"}}},
			&op.Filter{Pred: expr.Eq(expr.C("t1.name"), expr.LStr(p.Str("tagName")))},
			&op.Expand{From: "post", To: "t2", Et: h.HasTag, Dir: catalog.Out, DstLabel: h.Tag},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "t2", Prop: "name", As: "t2.name"}}},
			&op.Filter{Pred: expr.Ne(expr.C("t2.name"), expr.LStr(p.Str("tagName")))},
			&op.Aggregate{GroupBy: []string{"t2.name"}, Aggs: []op.AggSpec{{Func: op.Count, As: "postCount"}}},
			&op.OrderBy{Keys: []op.SortKey{{Col: "postCount", Desc: true}, {Col: "t2.name"}}, Limit: 10},
		}
	},
})

// IC7 — most recent likers of the person's messages.
var IC7 = register(&Query{
	Name: "IC7", Kind: IC, Freq: 14,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{"personId": vector.Int64(pg.PersonExt())}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.Expand{From: "msg", To: "liker", Et: h.Likes, Dir: catalog.In, DstLabel: h.Person,
				EdgeProps: []op.EdgeProj{{Prop: "creationDate", As: "likeDate"}}},
			personCols("liker"),
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "msg", As: "msg.id", ExtID: true}}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "likeDate", Desc: true}, {Col: "liker.id"}},
				Limit: 20,
				Cols:  []string{"liker.id", "liker.firstName", "liker.lastName", "msg.id", "likeDate"},
			},
		}
	},
})

// IC8 — most recent replies to the person's messages.
var IC8 = register(&Query{
	Name: "IC8", Kind: IC, Freq: 44,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{"personId": vector.Int64(pg.PersonExt())}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.Expand{From: "msg", To: "reply", Et: h.ReplyOf, Dir: catalog.In, DstLabel: h.Comment},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "reply", Prop: "creationDate", As: "reply.creationDate"},
				{Var: "reply", As: "reply.id", ExtID: true},
				{Var: "reply", Prop: "content", As: "reply.content"},
			}},
			&op.Expand{From: "reply", To: "author", Et: h.HasCreator, Dir: catalog.Out, DstLabel: h.Person},
			personCols("author"),
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "reply.creationDate", Desc: true}, {Col: "reply.id"}},
				Limit: 20,
				Cols:  []string{"author.id", "author.firstName", "author.lastName", "reply.id", "reply.content", "reply.creationDate"},
			},
		}
	},
})

// IC9 — recent messages (creationDate < D) by friends within 2 hops: the
// paper's running example (Figure 8 executes its single-source analog) and
// one of its heaviest queries.
var IC9 = register(&Query{
	Name: "IC9", Kind: IC, Freq: 16,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"maxDate":  vector.Date(pg.Date()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "f", 1, 2),
			personCols("f"),
			&op.Expand{From: "f", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "msg", Prop: "creationDate", As: "msg.creationDate"},
				{Var: "msg", As: "msg.id", ExtID: true},
				{Var: "msg", Prop: "content", As: "msg.content"},
			}},
			&op.Filter{Pred: expr.Lt(expr.C("msg.creationDate"), expr.LDate(p.Int("maxDate")))},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "msg.creationDate", Desc: true}, {Col: "msg.id"}},
				Limit: 20,
				Cols:  []string{"f.id", "f.firstName", "f.lastName", "msg.id", "msg.content", "msg.creationDate"},
			},
		}
	},
})

// IC10 — friend recommendation among exactly-2-hop friends born near month
// M, scored by common interests versus total posting activity. The scoring
// correlates independent subqueries — hash joins, flat execution, matching
// the paper's observation that IC10 sees little factorization benefit.
var IC10 = register(&Query{
	Name: "IC10", Kind: IC, Freq: 7,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"month":    vector.Int64(pg.Month()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		// Posts-about-my-interests per creator.
		common := []op.Operator{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "tag", Et: h.HasInterest, Dir: catalog.Out, DstLabel: h.Tag},
			&op.Expand{From: "tag", To: "post", Et: h.HasTag, Dir: catalog.In, DstLabel: h.Post},
			&op.Expand{From: "post", To: "creator", Et: h.HasCreator, Dir: catalog.Out, DstLabel: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "creator", As: "creator.id", ExtID: true}}},
			&op.Aggregate{GroupBy: []string{"creator.id"}, Aggs: []op.AggSpec{{Func: op.Count, As: "commonCount"}}},
		}
		// Total posts per 2-hop friend.
		totals := func() []op.Operator {
			return []op.Operator{
				seekPerson(h, p.Int("personId")),
				friends(h, "p", "foafT", 2, 2),
				&op.Expand{From: "foafT", To: "post", Et: h.HasCreator, Dir: catalog.In, DstLabel: h.Post},
				&op.ProjectProps{Specs: []op.ProjSpec{{Var: "foafT", As: "foafT.id", ExtID: true}}},
				&op.Aggregate{GroupBy: []string{"foafT.id"}, Aggs: []op.AggSpec{{Func: op.Count, As: "totalPosts"}}},
			}
		}
		// birthday month: days-since-epoch mod 365 / 31 is meaningless, so
		// approximate month extraction as (birthday mod 372) / 31 + 1 over a
		// synthetic 12×31 calendar — deterministic on generated data.
		monthExpr := expr.Arith{Op: expr.Add,
			L: expr.Arith{Op: expr.Div,
				L: expr.Arith{Op: expr.Sub, L: expr.C("foaf.birthday"),
					R: expr.Arith{Op: expr.Mul, L: expr.Arith{Op: expr.Div, L: expr.C("foaf.birthday"), R: expr.LInt(372)}, R: expr.LInt(372)}},
				R: expr.LInt(31)},
			R: expr.LInt(1)}
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "foaf", 2, 2),
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "foaf", As: "foaf.id", ExtID: true},
				{Var: "foaf", Prop: "firstName", As: "foaf.firstName"},
				{Var: "foaf", Prop: "birthday", As: "foaf.birthday"},
			}},
			&op.ProjectExpr{Expr: monthExpr, As: "bMonth", Kind: vector.KindInt64},
			&op.Filter{Pred: expr.Eq(expr.C("bMonth"), expr.LInt(p.Int("month")))},
			&op.HashJoin{Type: op.LeftOuter, LeftKeys: []string{"foaf.id"}, RightKeys: []string{"creator.id"}, Right: common},
			&op.HashJoin{Type: op.LeftOuter, LeftKeys: []string{"foaf.id"}, RightKeys: []string{"foafT.id"}, Right: totals()},
			&op.ProjectExpr{
				Expr: expr.Arith{Op: expr.Sub,
					L: expr.Arith{Op: expr.Mul, L: expr.LInt(2), R: expr.C("commonCount")},
					R: expr.C("totalPosts")},
				As: "score", Kind: vector.KindInt64,
			},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "score", Desc: true}, {Col: "foaf.id"}},
				Limit: 10,
				Cols:  []string{"foaf.id", "foaf.firstName", "score"},
			},
		}
	},
})

// IC11 — friends (1..2 hops) who started work in country X before a given
// year, earliest first.
var IC11 = register(&Query{
	Name: "IC11", Kind: IC, Freq: 17,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"country":  vector.String_(pg.CountryName()),
			"year":     vector.Int64(pg.WorkYear()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			friends(h, "p", "f", 1, 2),
			&op.Expand{From: "f", To: "org", Et: h.WorkAt, Dir: catalog.Out, DstLabel: h.Company,
				EdgeProps: []op.EdgeProj{{Prop: "workFrom", As: "workFrom"}}},
			&op.Filter{Pred: expr.Lt(expr.C("workFrom"), expr.LInt(p.Int("year")))},
			&op.Expand{From: "org", To: "ctry", Et: h.IsLocatedIn, Dir: catalog.Out, DstLabel: h.Country},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "ctry", Prop: "name", As: "ctry.name"}}},
			&op.Filter{Pred: expr.Eq(expr.C("ctry.name"), expr.LStr(p.Str("country")))},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "f", As: "f.id", ExtID: true},
				{Var: "f", Prop: "firstName", As: "f.firstName"},
				{Var: "org", Prop: "name", As: "org.name"},
			}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "workFrom"}, {Col: "f.id"}, {Col: "org.name", Desc: true}},
				Limit: 10,
				Cols:  []string{"f.id", "f.firstName", "org.name", "workFrom"},
			},
		}
	},
})

// IC12 — expert search: friends whose comments reply to posts tagged within
// a given tag class, with reply counts.
var IC12 = register(&Query{
	Name: "IC12", Kind: IC, Freq: 20,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"tagClass": vector.String_(pg.TagClassName()),
		}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.Expand{From: "f", To: "c", Et: h.HasCreator, Dir: catalog.In, DstLabel: h.Comment},
			&op.Expand{From: "c", To: "post", Et: h.ReplyOf, Dir: catalog.Out, DstLabel: h.Post},
			&op.Expand{From: "post", To: "t", Et: h.HasTag, Dir: catalog.Out, DstLabel: h.Tag},
			&op.Expand{From: "t", To: "tc", Et: h.HasType, Dir: catalog.Out, DstLabel: h.TagClass},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "tc", Prop: "name", As: "tc.name"}}},
			&op.Filter{Pred: expr.Eq(expr.C("tc.name"), expr.LStr(p.Str("tagClass")))},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			&op.Aggregate{GroupBy: []string{"f.id"}, Aggs: []op.AggSpec{{Func: op.Count, As: "replyCount"}}},
			&op.OrderBy{Keys: []op.SortKey{{Col: "replyCount", Desc: true}, {Col: "f.id"}}, Limit: 20},
		}
	},
})
