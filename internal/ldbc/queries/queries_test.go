package queries_test

import (
	"reflect"

	"strings"
	"testing"

	"ges/internal/core"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/vector"
)

func smallDataset(t testing.TB) *ldbc.Dataset {
	t.Helper()
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func blockRows(fb *core.FlatBlock) []string {
	if fb == nil {
		return nil
	}
	out := make([]string, fb.NumRows())
	for i, row := range fb.Rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out[i] = sb.String()
	}
	return out
}

// TestRegistryComplete checks the full workload is present: 14 IC + 7 IS +
// 8 IU = 29 queries, matching LDBC SNB Interactive v1 (§2.2).
func TestRegistryComplete(t *testing.T) {
	if got := len(queries.All()); got != 29 {
		t.Fatalf("registry has %d queries, want 29", got)
	}
	counts := map[queries.Kind]int{}
	for _, q := range queries.All() {
		counts[q.Kind]++
		if q.GenParams == nil {
			t.Errorf("%s: missing GenParams", q.Name)
		}
		if q.Freq <= 0 {
			t.Errorf("%s: missing Freq", q.Name)
		}
	}
	if counts[queries.IC] != 14 || counts[queries.IS] != 7 || counts[queries.IU] != 8 {
		t.Fatalf("kind counts = %v, want 14/7/8", counts)
	}
	if _, err := queries.ByName("IC9"); err != nil {
		t.Fatal(err)
	}
	if _, err := queries.ByName("ICX"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

// TestAllReadQueriesAgreeAcrossModes is the workload-level differential
// test: every read query, over many parameter draws, must return identical
// result multisets under GES (flat), GES_f and GES_f*. Ordered queries also
// compare row order.
func TestAllReadQueriesAgreeAcrossModes(t *testing.T) {
	ds := smallDataset(t)
	runners := map[string]*queries.Runner{
		"GES":    queries.NewRunner(ds, exec.ModeFlat, nil),
		"GES_f":  queries.NewRunner(ds, exec.ModeFactorized, nil),
		"GES_f*": queries.NewRunner(ds, exec.ModeFused, nil),
	}
	for _, q := range queries.All() {
		if q.Kind == queries.IU {
			continue
		}
		q := q
		t.Run(q.Name, func(t *testing.T) {
			pg := ds.NewParamGen(11)
			nonEmpty := 0
			for trial := 0; trial < 8; trial++ {
				params := q.GenParams(ds, pg)
				var want []string
				for _, name := range []string{"GES", "GES_f", "GES_f*"} {
					fb, _, err := runners[name].Execute(q, params)
					if err != nil {
						t.Fatalf("%s trial %d: %v", name, trial, err)
					}
					got := blockRows(fb)
					if want == nil {
						want = got
						if len(got) > 0 {
							nonEmpty++
						}
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d: %s disagrees with GES:\n got %v\nwant %v",
							trial, name, got, want)
					}
				}
			}
			if nonEmpty == 0 {
				t.Logf("note: all %s trials returned empty results on this dataset", q.Name)
			}
		})
	}
}

// TestReadQueriesReturnData guards against degenerate parameters: across
// enough draws, each IC query should produce at least one non-empty result
// on the small dataset (except possibly the anti-join-shaped IC4/IC10 on
// tiny data).
func TestReadQueriesReturnData(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	for _, q := range queries.All() {
		if q.Kind != queries.IC {
			continue
		}
		pg := ds.NewParamGen(23)
		rows := 0
		for trial := 0; trial < 20 && rows == 0; trial++ {
			fb, _, err := r.Execute(q, q.GenParams(ds, pg))
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			if fb != nil {
				rows += fb.NumRows()
			}
		}
		if rows == 0 && q.Name != "IC10" && q.Name != "IC4" {
			t.Errorf("%s: no trial returned data — parameters or plan degenerate", q.Name)
		}
	}
}

// TestUpdatesApplyAndBecomeVisible runs every IU query and verifies its
// effect through follow-up reads.
func TestUpdatesApplyAndBecomeVisible(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	pg := ds.NewParamGen(31)

	for _, q := range queries.All() {
		if q.Kind != queries.IU {
			continue
		}
		for trial := 0; trial < 5; trial++ {
			params := q.GenParams(ds, pg)
			if _, _, err := r.Execute(q, params); err != nil {
				t.Fatalf("%s trial %d: %v", q.Name, trial, err)
			}
		}
	}
	if _, ver := r.Mgr.Stats(); ver != 8*5 {
		t.Fatalf("committed versions = %d, want 40", func() uint64 { _, v := r.Mgr.Stats(); return v }())
	}

	// IU1 effect: the new persons resolve through IS1.
	is1, _ := queries.ByName("IS1")
	params := queries.Params{"personId": intVal(int64(len(ds.Persons)) + 1)}
	fb, _, err := r.Execute(is1, params)
	if err != nil {
		t.Fatal(err)
	}
	if fb.NumRows() != 1 {
		t.Fatalf("IS1 on IU1-created person: %d rows", fb.NumRows())
	}
	if fb.Rows[0][1].S != "Newcomer" {
		t.Fatalf("new person lastName = %q", fb.Rows[0][1].S)
	}
}

// TestUpdatesVisibleToReadPlans inserts a like and checks IC7 sees it.
func TestUpdatesVisibleToReadPlans(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)

	// Find a post and its creator so the like lands on a known message.
	postExt := int64(1)
	iu2, _ := queries.ByName("IU2")
	likerExt := int64(3)
	if _, _, err := r.Execute(iu2, queries.Params{
		"personId": intVal(likerExt),
		"postId":   intVal(postExt),
		"date":     dateVal(ldbc.DayEnd),
	}); err != nil {
		t.Fatal(err)
	}

	// IC7 for the post's creator must list the new liker with the new date.
	creator := creatorOfPost(t, r, postExt)
	ic7, _ := queries.ByName("IC7")
	fb, _, err := r.Execute(ic7, queries.Params{"personId": intVal(creator)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range fb.Rows {
		if row[0].I == likerExt && row[4].I == ldbc.DayEnd {
			found = true
		}
	}
	if !found {
		t.Fatalf("IC7 does not see the committed like:\n%s", fb)
	}
}

func creatorOfPost(t *testing.T, r *queries.Runner, postExt int64) int64 {
	t.Helper()
	is5, _ := queries.ByName("IS5")
	fb, _, err := r.Execute(is5, queries.Params{
		"messageId": intVal(postExt),
		"isPost":    intVal(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb.NumRows() != 1 {
		t.Fatalf("IS5 rows = %d", fb.NumRows())
	}
	return fb.Rows[0][0].I
}

// TestOrderedQueriesAreDeterministic reruns ordered queries and requires
// byte-identical output (the LDBC driver audits result correctness the same
// way).
func TestOrderedQueriesAreDeterministic(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	for _, name := range []string{"IC1", "IC2", "IC5", "IC9", "IS2", "IS3"} {
		q, err := queries.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pg := ds.NewParamGen(5)
		params := q.GenParams(ds, pg)
		a, _, err := r.Execute(q, params)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := r.Execute(q, params)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(blockRows(a), blockRows(b)) {
			t.Fatalf("%s: nondeterministic results", name)
		}
	}
}

// TestIC13PathLengths sanity-checks IC13 against a plain BFS oracle.
func TestIC13PathLengths(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	ic13, _ := queries.ByName("IC13")
	pg := ds.NewParamGen(77)
	lengths := map[int64]int{}
	for trial := 0; trial < 30; trial++ {
		params := ic13.GenParams(ds, pg)
		fb, _, err := r.Execute(ic13, params)
		if err != nil {
			t.Fatal(err)
		}
		if fb.NumRows() != 1 {
			t.Fatalf("IC13 rows = %d", fb.NumRows())
		}
		l := fb.Rows[0][0].I
		if l == 0 {
			t.Fatal("distinct persons cannot have distance 0")
		}
		lengths[l]++
	}
	// On a small-world social graph most pairs are within a few hops.
	sawShort := false
	for l := range lengths {
		if l >= 1 && l <= 6 {
			sawShort = true
		}
	}
	if !sawShort {
		t.Fatalf("implausible IC13 distance distribution: %v", lengths)
	}
}

// TestIC14WeightsOrdered verifies IC14 output: all rows share the shortest
// length and weights descend.
func TestIC14WeightsOrdered(t *testing.T) {
	ds := smallDataset(t)
	r := queries.NewRunner(ds, exec.ModeFused, nil)
	ic14, _ := queries.ByName("IC14")
	pg := ds.NewParamGen(13)
	checked := 0
	for trial := 0; trial < 20; trial++ {
		fb, _, err := r.Execute(ic14, ic14.GenParams(ds, pg))
		if err != nil {
			t.Fatal(err)
		}
		if fb.NumRows() == 0 {
			continue
		}
		checked++
		l0 := fb.Rows[0][0].I
		prev := fb.Rows[0][1].F
		for _, row := range fb.Rows {
			if row[0].I != l0 {
				t.Fatal("IC14 emitted paths of differing lengths")
			}
			if row[1].F > prev {
				t.Fatal("IC14 weights not descending")
			}
			prev = row[1].F
		}
	}
	if checked == 0 {
		t.Fatal("IC14 never found a path on the small dataset")
	}
}

func intVal(v int64) vector.Value  { return vector.Int64(v) }
func dateVal(v int64) vector.Value { return vector.Date(v) }
