package queries

import (
	"sort"

	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/ldbc"
	"ges/internal/storage"
	"ges/internal/vector"
)

// The path queries IC13 and IC14 are implemented as stored procedures, as
// in the paper (§6.1: "operators such as ShortestPath in IC13 ... are
// implemented as stored procedures, where intermediate data is hard to
// factorize"). Their intermediate state is therefore excluded from the
// engine's factorization memory accounting, matching Table 2's footnote.

// bfsDistances runs a BFS from src over KNOWS and returns the distance map
// up to maxDepth (or unbounded when maxDepth < 0).
func bfsDistances(view storage.View, h *ldbc.Handles, src vector.VID, maxDepth int) map[vector.VID]int {
	dist := map[vector.VID]int{src: 0}
	frontier := []vector.VID{src}
	var segBuf []storage.Segment
	for d := 1; len(frontier) > 0 && (maxDepth < 0 || d <= maxDepth); d++ {
		var next []vector.VID
		for _, u := range frontier {
			segBuf = view.Neighbors(segBuf[:0], u, h.Knows, catalog.Out, h.Person, false)
			for _, seg := range segBuf {
				for _, v := range seg.VIDs {
					if _, ok := dist[v]; ok {
						continue
					}
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// IC13 — shortest path length between two persons over KNOWS (-1 when
// disconnected).
var IC13 = register(&Query{
	Name: "IC13", Kind: IC, Freq: 19,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		a, b := pg.TwoPersons()
		return Params{"person1Id": vector.Int64(a), "person2Id": vector.Int64(b)}
	},
	Proc: func(view storage.View, h *ldbc.Handles, p Params) (*core.FlatBlock, error) {
		out := core.NewFlatBlock([]string{"shortestPathLength"}, []vector.Kind{vector.KindInt64})
		src, ok1 := view.VertexByExt(h.Person, p.Int("person1Id"))
		dst, ok2 := view.VertexByExt(h.Person, p.Int("person2Id"))
		if !ok1 || !ok2 {
			out.AppendOwned([]vector.Value{vector.Int64(-1)})
			return out, nil
		}
		if src == dst {
			out.AppendOwned([]vector.Value{vector.Int64(0)})
			return out, nil
		}
		// Bidirectional BFS: alternate expanding the smaller frontier.
		distA := map[vector.VID]int{src: 0}
		distB := map[vector.VID]int{dst: 0}
		frontA := []vector.VID{src}
		frontB := []vector.VID{dst}
		var segBuf []storage.Segment
		expand := func(front []vector.VID, dist, other map[vector.VID]int) ([]vector.VID, int) {
			var next []vector.VID
			for _, u := range front {
				d := dist[u]
				segBuf = view.Neighbors(segBuf[:0], u, h.Knows, catalog.Out, h.Person, false)
				for _, seg := range segBuf {
					for _, v := range seg.VIDs {
						if _, seen := dist[v]; seen {
							continue
						}
						dist[v] = d + 1
						if od, hit := other[v]; hit {
							return nil, d + 1 + od
						}
						next = append(next, v)
					}
				}
			}
			return next, -1
		}
		for len(frontA) > 0 && len(frontB) > 0 {
			var meet int
			if len(frontA) <= len(frontB) {
				frontA, meet = expand(frontA, distA, distB)
			} else {
				frontB, meet = expand(frontB, distB, distA)
			}
			if meet >= 0 {
				out.AppendOwned([]vector.Value{vector.Int64(int64(meet))})
				return out, nil
			}
		}
		out.AppendOwned([]vector.Value{vector.Int64(-1)})
		return out, nil
	},
})

// IC14 — all shortest KNOWS-paths between two persons, scored by the
// interaction weight of consecutive pairs: 1.0 per comment replying to the
// other's post, 0.5 per comment replying to the other's comment (both
// directions), as in SNB. Path enumeration is capped at 1000 paths.
var IC14 = register(&Query{
	Name: "IC14", Kind: IC, Freq: 12,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		a, b := pg.TwoPersons()
		return Params{"person1Id": vector.Int64(a), "person2Id": vector.Int64(b)}
	},
	Proc: func(view storage.View, h *ldbc.Handles, p Params) (*core.FlatBlock, error) {
		out := core.NewFlatBlock(
			[]string{"pathLen", "weight"},
			[]vector.Kind{vector.KindInt64, vector.KindFloat64},
		)
		src, ok1 := view.VertexByExt(h.Person, p.Int("person1Id"))
		dst, ok2 := view.VertexByExt(h.Person, p.Int("person2Id"))
		if !ok1 || !ok2 {
			return out, nil
		}
		// Distances from dst bound the search to shortest paths only.
		distTo := bfsDistances(view, h, dst, -1)
		total, ok := distTo[src]
		if !ok {
			return out, nil
		}
		const maxPaths = 1000
		var paths [][]vector.VID
		var walk func(u vector.VID, path []vector.VID)
		var segBuf []storage.Segment
		walk = func(u vector.VID, path []vector.VID) {
			if len(paths) >= maxPaths {
				return
			}
			if u == dst {
				paths = append(paths, append([]vector.VID(nil), path...))
				return
			}
			segBuf = view.Neighbors(segBuf[:0], u, h.Knows, catalog.Out, h.Person, false)
			var nexts []vector.VID
			for _, seg := range segBuf {
				for _, v := range seg.VIDs {
					if d, ok := distTo[v]; ok && d == distTo[u]-1 {
						nexts = append(nexts, v)
					}
				}
			}
			for _, v := range nexts {
				walk(v, append(path, v))
			}
		}
		walk(src, []vector.VID{src})

		weights := make([]float64, len(paths))
		for i, path := range paths {
			w := 0.0
			for k := 0; k+1 < len(path); k++ {
				w += interactionWeight(view, h, path[k], path[k+1])
			}
			weights[i] = w
		}
		order := make([]int, len(paths))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
		for _, i := range order {
			out.AppendOwned([]vector.Value{
				vector.Int64(int64(total)),
				vector.Float64(weights[i]),
			})
		}
		return out, nil
	},
})

// interactionWeight scores one adjacent person pair: comments by either one
// replying to the other's posts score 1.0, to the other's comments 0.5.
func interactionWeight(view storage.View, h *ldbc.Handles, a, b vector.VID) float64 {
	w := 0.0
	var segBuf, parentBuf []storage.Segment
	scoreDir := func(x, y vector.VID) {
		// Comments created by x ...
		segBuf = view.Neighbors(segBuf[:0], x, h.HasCreator, catalog.In, h.Comment, false)
		for _, seg := range segBuf {
			for _, c := range seg.VIDs {
				// ... replying to a message created by y.
				parentBuf = view.Neighbors(parentBuf[:0], c, h.ReplyOf, catalog.Out, storage.AnyLabel, false)
				for _, pseg := range parentBuf {
					for _, parent := range pseg.VIDs {
						for _, cseg := range view.Neighbors(nil, parent, h.HasCreator, catalog.Out, h.Person, false) {
							for _, creator := range cseg.VIDs {
								if creator != y {
									continue
								}
								if view.LabelOf(parent) == h.Post {
									w += 1.0
								} else {
									w += 0.5
								}
							}
						}
					}
				}
			}
		}
	}
	scoreDir(a, b)
	scoreDir(b, a)
	return w
}
