package queries

import (
	"ges/internal/catalog"
	"ges/internal/core"
	"ges/internal/ldbc"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/vector"
)

// msgParams picks a random message (post or comment) and carries its label
// through the plan builder.
func msgParams(pg *ldbc.ParamGen) Params {
	ext, isPost := pg.MessageExt()
	label := int64(0)
	if isPost {
		label = 1
	}
	return Params{"messageId": vector.Int64(ext), "isPost": vector.Int64(label)}
}

func msgLabel(h *ldbc.Handles, p Params) catalog.LabelID {
	if p.Int("isPost") == 1 {
		return h.Post
	}
	return h.Comment
}

// IS1 — a person's profile.
var IS1 = register(&Query{
	Name: "IS1", Kind: IS, Freq: 95,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{"personId": vector.Int64(pg.PersonExt())}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "p", Prop: "firstName", As: "firstName"},
				{Var: "p", Prop: "lastName", As: "lastName"},
				{Var: "p", Prop: "birthday", As: "birthday"},
				{Var: "p", Prop: "locationIP", As: "locationIP"},
				{Var: "p", Prop: "browserUsed", As: "browserUsed"},
				{Var: "p", Prop: "gender", As: "gender"},
				{Var: "p", Prop: "creationDate", As: "creationDate"},
			}},
			&op.Defactor{Cols: []string{"firstName", "lastName", "birthday", "locationIP", "browserUsed", "gender", "creationDate"}},
		}
	},
})

// IS2 — a person's 10 most recent messages.
var IS2 = register(&Query{
	Name: "IS2", Kind: IS, Freq: 86,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{"personId": vector.Int64(pg.PersonExt())}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "msg", As: "msg.id", ExtID: true},
				{Var: "msg", Prop: "content", As: "msg.content"},
				{Var: "msg", Prop: "creationDate", As: "msg.creationDate"},
			}},
			&op.OrderBy{
				Keys:  []op.SortKey{{Col: "msg.creationDate", Desc: true}, {Col: "msg.id", Desc: true}},
				Limit: 10,
				Cols:  []string{"msg.id", "msg.content", "msg.creationDate"},
			},
		}
	},
})

// IS3 — a person's friends with friendship dates, most recent first.
var IS3 = register(&Query{
	Name: "IS3", Kind: IS, Freq: 92,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{"personId": vector.Int64(pg.PersonExt())}
	},
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			seekPerson(h, p.Int("personId")),
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
				EdgeProps: []op.EdgeProj{{Prop: "creationDate", As: "since"}}},
			personCols("f"),
			&op.OrderBy{
				Keys: []op.SortKey{{Col: "since", Desc: true}, {Col: "f.id"}},
				Cols: []string{"f.id", "f.firstName", "f.lastName", "since"},
			},
		}
	},
})

// IS4 — a message's content and creation date.
var IS4 = register(&Query{
	Name: "IS4", Kind: IS, Freq: 88,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params { return msgParams(pg) },
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "msg", Label: msgLabel(h, p), ExtID: p.Int("messageId")},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "msg", Prop: "creationDate", As: "creationDate"},
				{Var: "msg", Prop: "content", As: "content"},
			}},
			&op.Defactor{Cols: []string{"creationDate", "content"}},
		}
	},
})

// IS5 — a message's creator.
var IS5 = register(&Query{
	Name: "IS5", Kind: IS, Freq: 88,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params { return msgParams(pg) },
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "msg", Label: msgLabel(h, p), ExtID: p.Int("messageId")},
			&op.Expand{From: "msg", To: "author", Et: h.HasCreator, Dir: catalog.Out, DstLabel: h.Person},
			personCols("author"),
			&op.Defactor{Cols: []string{"author.id", "author.firstName", "author.lastName"}},
		}
	},
})

// IS6 — the forum containing a message (walking reply chains up to the root
// post), with its moderator. Implemented as a stored procedure: the
// root-post walk is an unbounded pointer chase, not a fixed pattern.
var IS6 = register(&Query{
	Name: "IS6", Kind: IS, Freq: 77,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params { return msgParams(pg) },
	Proc: func(view storage.View, h *ldbc.Handles, p Params) (*core.FlatBlock, error) {
		out := core.NewFlatBlock(
			[]string{"forum.id", "forum.title", "moderator.id"},
			[]vector.Kind{vector.KindInt64, vector.KindString, vector.KindInt64},
		)
		msg, ok := view.VertexByExt(msgLabel(h, p), p.Int("messageId"))
		if !ok {
			return out, nil
		}
		// Walk to the root post.
		for view.LabelOf(msg) == h.Comment {
			segs := view.Neighbors(nil, msg, h.ReplyOf, catalog.Out, storage.AnyLabel, false)
			if len(segs) == 0 || len(segs[0].VIDs) == 0 {
				return out, nil
			}
			msg = segs[0].VIDs[0]
		}
		for _, fseg := range view.Neighbors(nil, msg, h.ContainerOf, catalog.In, h.Forum, false) {
			for _, forum := range fseg.VIDs {
				var modID int64 = -1
				for _, mseg := range view.Neighbors(nil, forum, h.HasModerator, catalog.Out, h.Person, false) {
					for _, mod := range mseg.VIDs {
						modID = view.ExtID(mod)
					}
				}
				out.AppendOwned([]vector.Value{
					vector.Int64(view.ExtID(forum)),
					view.Prop(forum, h.FTitle),
					vector.Int64(modID),
				})
			}
		}
		return out, nil
	},
})

// IS7 — replies to a message with their authors, newest first.
var IS7 = register(&Query{
	Name: "IS7", Kind: IS, Freq: 66,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params { return msgParams(pg) },
	Build: func(h *ldbc.Handles, p Params) plan.Plan {
		return plan.Plan{
			&op.NodeByIdSeek{Var: "msg", Label: msgLabel(h, p), ExtID: p.Int("messageId")},
			&op.Expand{From: "msg", To: "reply", Et: h.ReplyOf, Dir: catalog.In, DstLabel: h.Comment},
			&op.ProjectProps{Specs: []op.ProjSpec{
				{Var: "reply", As: "reply.id", ExtID: true},
				{Var: "reply", Prop: "content", As: "reply.content"},
				{Var: "reply", Prop: "creationDate", As: "reply.creationDate"},
			}},
			&op.Expand{From: "reply", To: "author", Et: h.HasCreator, Dir: catalog.Out, DstLabel: h.Person},
			personCols("author"),
			&op.OrderBy{
				Keys: []op.SortKey{{Col: "reply.creationDate", Desc: true}, {Col: "author.id"}},
				Cols: []string{"reply.id", "reply.content", "reply.creationDate", "author.id", "author.firstName", "author.lastName"},
			},
		}
	},
})
