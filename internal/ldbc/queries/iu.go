package queries

import (
	"fmt"

	"ges/internal/catalog"
	"ges/internal/ldbc"
	"ges/internal/txn"
	"ges/internal/vector"
)

// resolve looks up a vertex by external ID at the latest committed version.
func resolve(m *txn.Manager, label catalog.LabelID, ext int64) (vector.VID, error) {
	v, ok := m.Snapshot().VertexByExt(label, ext)
	if !ok {
		return vector.NilVID, fmt.Errorf("queries: vertex %d (label %d) not found", ext, label)
	}
	return v, nil
}

// IU1 — add a person with location and interests.
var IU1 = register(&Query{
	Name: "IU1", Kind: IU, Freq: 2,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId":  vector.Int64(ds.NewPersonExt()),
			"firstName": vector.String_(pg.FirstName()),
			"creation":  vector.Date(pg.Date()),
			"cityId":    vector.Int64(int64(pg.Rng().Intn(ds.NumCities()) + 1)),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		city, err := resolve(m, h.City, p.Int("cityId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{city})
		v, err := tx.AddVertex(h.Person, p.Int("personId"),
			vector.String_(p.Str("firstName")), vector.String_("Newcomer"),
			vector.String_("female"), vector.Date(9000),
			p["creation"], vector.String_("77.1.2.3"), vector.String_("Chrome"))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.IsLocatedIn, v, city); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU2 — add a like to a post.
var IU2 = register(&Query{
	Name: "IU2", Kind: IU, Freq: 14,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"personId": vector.Int64(pg.PersonExt()),
			"postId":   vector.Int64(pg.PostExt()),
			"date":     vector.Date(pg.Date()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		person, err := resolve(m, h.Person, p.Int("personId"))
		if err != nil {
			return err
		}
		post, err := resolve(m, h.Post, p.Int("postId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{person, post})
		if err := tx.AddEdge(h.Likes, person, post, p["date"]); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU3 — add a like to a comment.
var IU3 = register(&Query{
	Name: "IU3", Kind: IU, Freq: 7,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		ext, _ := pg.MessageExt()
		if int(ext) > len(ds.Comments) {
			ext = int64(len(ds.Comments))
		}
		if ext < 1 {
			ext = 1
		}
		return Params{
			"personId":  vector.Int64(pg.PersonExt()),
			"commentId": vector.Int64(ext),
			"date":      vector.Date(pg.Date()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		person, err := resolve(m, h.Person, p.Int("personId"))
		if err != nil {
			return err
		}
		comment, err := resolve(m, h.Comment, p.Int("commentId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{person, comment})
		if err := tx.AddEdge(h.Likes, person, comment, p["date"]); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU4 — add a forum with a moderator.
var IU4 = register(&Query{
	Name: "IU4", Kind: IU, Freq: 2,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"forumId":     vector.Int64(ds.NewForumExt()),
			"moderatorId": vector.Int64(pg.PersonExt()),
			"date":        vector.Date(pg.Date()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		mod, err := resolve(m, h.Person, p.Int("moderatorId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{mod})
		forum, err := tx.AddVertex(h.Forum, p.Int("forumId"),
			vector.String_(fmt.Sprintf("New forum %d", p.Int("forumId"))), p["date"])
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.HasModerator, forum, mod); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU5 — add a forum membership.
var IU5 = register(&Query{
	Name: "IU5", Kind: IU, Freq: 22,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"forumId":  vector.Int64(pg.ForumExt()),
			"personId": vector.Int64(pg.PersonExt()),
			"date":     vector.Date(pg.Date()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		forum, err := resolve(m, h.Forum, p.Int("forumId"))
		if err != nil {
			return err
		}
		person, err := resolve(m, h.Person, p.Int("personId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{forum, person})
		if err := tx.AddEdge(h.HasMember, forum, person, p["date"]); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU6 — add a post to a forum.
var IU6 = register(&Query{
	Name: "IU6", Kind: IU, Freq: 11,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		return Params{
			"postId":   vector.Int64(ds.NewPostExt()),
			"authorId": vector.Int64(pg.PersonExt()),
			"forumId":  vector.Int64(pg.ForumExt()),
			"date":     vector.Date(pg.Date()),
			"length":   vector.Int64(pg.RandomContentLength()),
			"language": vector.String_(pg.RandomLanguage()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		author, err := resolve(m, h.Person, p.Int("authorId"))
		if err != nil {
			return err
		}
		forum, err := resolve(m, h.Forum, p.Int("forumId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{author, forum})
		post, err := tx.AddVertex(h.Post, p.Int("postId"),
			vector.String_("new post"), p["length"], p["date"],
			vector.String_("Chrome"), vector.String_("77.9.9.9"),
			vector.String_(p.Str("language")))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.HasCreator, post, author); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.ContainerOf, forum, post); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU7 — add a comment replying to a message.
var IU7 = register(&Query{
	Name: "IU7", Kind: IU, Freq: 14,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		pm := msgParams(pg)
		pm["commentId"] = vector.Int64(ds.NewCommentExt())
		pm["authorId"] = vector.Int64(pg.PersonExt())
		pm["date"] = vector.Date(pg.Date())
		pm["length"] = vector.Int64(pg.RandomContentLength())
		return pm
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		author, err := resolve(m, h.Person, p.Int("authorId"))
		if err != nil {
			return err
		}
		parent, err := resolve(m, msgLabel(h, p), p.Int("messageId"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{author, parent})
		c, err := tx.AddVertex(h.Comment, p.Int("commentId"),
			vector.String_("new reply"), p["length"], p["date"],
			vector.String_("Firefox"), vector.String_("77.8.8.8"))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.HasCreator, c, author); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.ReplyOf, c, parent); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})

// IU8 — add a friendship (symmetric KNOWS pair).
var IU8 = register(&Query{
	Name: "IU8", Kind: IU, Freq: 5,
	GenParams: func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params {
		a, b := pg.TwoPersons()
		return Params{
			"person1Id": vector.Int64(a),
			"person2Id": vector.Int64(b),
			"date":      vector.Date(pg.Date()),
		}
	},
	Update: func(m *txn.Manager, ds *ldbc.Dataset, p Params) error {
		h := ds.H
		p1, err := resolve(m, h.Person, p.Int("person1Id"))
		if err != nil {
			return err
		}
		p2, err := resolve(m, h.Person, p.Int("person2Id"))
		if err != nil {
			return err
		}
		tx := m.Begin([]vector.VID{p1, p2})
		if err := tx.AddEdge(h.Knows, p1, p2, p["date"]); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.AddEdge(h.Knows, p2, p1, p["date"]); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	},
})
