// Package queries implements the LDBC SNB Interactive v1 workload of the
// paper's evaluation (§2.2): 14 interactive-complex reads (IC1–IC14), 7
// interactive-short reads (IS1–IS7), and 8 updates (IU1–IU8), expressed as
// physical plans over the GES operator algebra (reads), stored procedures
// (IC13/IC14 path queries, as in the paper), and MV2PL transactions
// (updates).
//
// The queries are structurally faithful, laptop-scale renditions of the SNB
// definitions; deliberate simplifications (documented per query and in
// EXPERIMENTS.md) never change which engine feature a query stresses — the
// multi-hop expansions, aggregations, top-k sorts and cyclic joins all match
// the original choke points.
package queries

import (
	"fmt"

	"ges/internal/core"
	"ges/internal/ldbc"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/txn"
	"ges/internal/vector"
)

// Params carries one invocation's parameter bindings.
type Params map[string]vector.Value

// Int returns an int64/date parameter.
func (p Params) Int(name string) int64 { return p[name].I }

// Str returns a string parameter.
func (p Params) Str(name string) string { return p[name].S }

// Kind classifies a query within the workload mix.
type Kind uint8

// Workload classes.
const (
	IC Kind = iota // interactive complex read
	IS             // interactive short read
	IU             // interactive update
)

func (k Kind) String() string { return [...]string{"IC", "IS", "IU"}[k] }

// Query is one workload member. Exactly one of Build, Proc, or Update is
// set: Build produces a physical plan for the engine, Proc runs a stored
// procedure directly over a storage view (the paper implements the path
// queries IC13/IC14 this way), and Update applies a write transaction.
type Query struct {
	Name string
	Kind Kind

	// Freq is the relative frequency of the query in the benchmark mix
	// (approximating the SNB driver's frequency tables).
	Freq int

	GenParams func(ds *ldbc.Dataset, pg *ldbc.ParamGen) Params

	Build  func(h *ldbc.Handles, p Params) plan.Plan
	Proc   func(view storage.View, h *ldbc.Handles, p Params) (*core.FlatBlock, error)
	Update func(m *txn.Manager, ds *ldbc.Dataset, p Params) error
}

var registry []*Query

func register(q *Query) *Query {
	registry = append(registry, q)
	return q
}

// All returns every registered query in declaration order (IC1..IC14,
// IS1..IS7, IU1..IU8).
func All() []*Query { return registry }

// OfKind returns the queries of one class.
func OfKind(k Kind) []*Query {
	var out []*Query
	for _, q := range registry {
		if q.Kind == k {
			out = append(out, q)
		}
	}
	return out
}

// ByName resolves a query by name (e.g. "IC9").
func ByName(name string) (*Query, error) {
	for _, q := range registry {
		if q.Name == name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("queries: unknown query %q", name)
}
