package txn

import (
	"fmt"
	"testing"

	"ges/internal/testgraph"
	"ges/internal/vector"
)

func TestGCCompactsPropertyChains(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	const writes = 50
	for i := 0; i < writes; i++ {
		tx := m.Begin([]vector.VID{p0})
		if err := tx.SetProp(p0, s.PFirstName, vector.String_(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	dropped := m.GC()
	if dropped != writes-1 {
		t.Fatalf("GC dropped %d versions, want %d", dropped, writes-1)
	}
	if got := m.Snapshot().Prop(p0, s.PFirstName).S; got != fmt.Sprintf("v%d", writes-1) {
		t.Fatalf("latest value after GC = %q", got)
	}
	if m.GCRuns() != 1 {
		t.Fatalf("gc runs = %d", m.GCRuns())
	}
	// Second GC finds nothing.
	if dropped := m.GC(); dropped != 0 {
		t.Fatalf("second GC dropped %d", dropped)
	}
}

func TestGCRespectsPinnedSnapshots(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	write := func(val string) {
		tx := m.Begin([]vector.VID{p0})
		if err := tx.SetProp(p0, s.PFirstName, vector.String_(val)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	write("a")
	write("b")
	pinned := m.AcquireSnapshot() // pins version 2
	write("c")
	write("d")

	if got := m.GCHorizon(); got != 2 {
		t.Fatalf("horizon = %d, want pinned version 2", got)
	}
	dropped := m.GC()
	// Versions 1 and 2 collapse into 2 → exactly one version dropped.
	if dropped != 1 {
		t.Fatalf("GC dropped %d, want 1", dropped)
	}
	// The pinned snapshot still reads its value.
	if got := pinned.Prop(p0, s.PFirstName).S; got != "b" {
		t.Fatalf("pinned snapshot reads %q, want b", got)
	}
	// Later versions intact.
	if got := m.SnapshotAt(3).Prop(p0, s.PFirstName).S; got != "c" {
		t.Fatalf("version 3 reads %q", got)
	}
	m.Release(pinned)
	m.Release(pinned) // idempotent
	if got := m.GCHorizon(); got != 4 {
		t.Fatalf("horizon after release = %d, want 4", got)
	}
	if dropped := m.GC(); dropped != 2 {
		t.Fatalf("post-release GC dropped %d, want 2", dropped)
	}
	if got := m.Snapshot().Prop(p0, s.PFirstName).S; got != "d" {
		t.Fatalf("latest after full GC = %q", got)
	}
}

func TestGCMultiplePropsAndVertices(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	for round := 0; round < 10; round++ {
		for _, p := range f.Persons[:3] {
			tx := m.Begin([]vector.VID{p})
			if err := tx.SetProp(p, s.PFirstName, vector.String_(fmt.Sprintf("fn%d", round))); err != nil {
				t.Fatal(err)
			}
			if err := tx.SetProp(p, s.PLastName, vector.String_(fmt.Sprintf("ln%d", round))); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 3 vertices × 2 props × 10 rounds = 60 entries; GC keeps 1 per
	// (vertex, prop) = 6.
	if dropped := m.GC(); dropped != 54 {
		t.Fatalf("GC dropped %d, want 54", dropped)
	}
	snap := m.Snapshot()
	for _, p := range f.Persons[:3] {
		if snap.Prop(p, s.PFirstName).S != "fn9" || snap.Prop(p, s.PLastName).S != "ln9" {
			t.Fatal("latest values lost by GC")
		}
	}
}
