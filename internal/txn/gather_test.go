package txn

import (
	"testing"

	"ges/internal/testgraph"
	"ges/internal/vector"
)

// TestGatherAcrossOverlays is the batch-read contract of the transaction
// layer: GatherProps must agree row-for-row with the scalar Prop path when
// committed overlays shadow base rows — including dictionary codes minted by
// a transaction for strings the base never stored — and vertices born inside
// a transaction must gather their creation-time property rows.
func TestGatherAcrossOverlays(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	before := m.Snapshot()

	p0, p3 := f.Persons[0], f.Persons[3]
	tx := m.Begin([]vector.VID{p0, p3})
	// "Zelda" was never interned at load time: the overlay write mints a new
	// dictionary code that the gather path must carry through.
	if err := tx.SetProp(p0, s.PFirstName, vector.String_("Zelda")); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetProp(p3, s.PCreation, vector.Date(42)); err != nil {
		t.Fatal(err)
	}
	nv, err := tx.AddVertex(s.Person, 900, vector.String_("Newt"), vector.String_("Born"), vector.Date(20500))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	after := m.Snapshot()
	vids := append(append([]vector.VID{}, f.Persons...), nv)

	checkAgainstScalar := func(snap *Snapshot, label string) {
		t.Helper()
		name := vector.NewDictColumn("firstName", snap.PropDict(s.Person, s.PFirstName))
		name.Grow(len(vids))
		snap.GatherProps(vids, s.Person, s.PFirstName, nil, name)
		created := vector.NewColumn("creationDate", vector.KindDate)
		created.Grow(len(vids))
		snap.GatherProps(vids, s.Person, s.PCreation, nil, created)
		ext := make([]int64, len(vids))
		snap.GatherExtIDs(vids, nil, ext)
		for i, v := range vids {
			if got, want := name.StringAt(i), snap.Prop(v, s.PFirstName).S; got != want {
				t.Fatalf("%s: firstName[%d] = %q, want %q", label, i, got, want)
			}
			if got, want := created.Int64s()[i], snap.Prop(v, s.PCreation).I; got != want {
				t.Fatalf("%s: creationDate[%d] = %d, want %d", label, i, got, want)
			}
			if ext[i] != snap.ExtID(v) {
				t.Fatalf("%s: ext[%d] = %d, want %d", label, i, ext[i], snap.ExtID(v))
			}
		}
	}
	checkAgainstScalar(after, "after")

	// Spot-check the shadowing itself, not just scalar agreement.
	name := vector.NewDictColumn("firstName", after.PropDict(s.Person, s.PFirstName))
	name.Grow(len(vids))
	after.GatherProps(vids, s.Person, s.PFirstName, nil, name)
	if got := name.StringAt(0); got != "Zelda" {
		t.Fatalf("overlay row not shadowed: firstName[0] = %q", got)
	}
	if got := name.StringAt(len(vids) - 1); got != "Newt" {
		t.Fatalf("txn-born vertex not gathered: %q", got)
	}

	// The pre-transaction snapshot must keep gathering base values; its
	// scalar agreement covers the unshadowed base (nv rows are simply
	// invisible to it, matching Prop's invalid value as typed zero).
	old := vector.NewDictColumn("firstName", before.PropDict(s.Person, s.PFirstName))
	old.Grow(len(f.Persons))
	before.GatherProps(f.Persons, s.Person, s.PFirstName, nil, old)
	if got := old.StringAt(0); got != "Ada" {
		t.Fatalf("old snapshot sees overlay: firstName[0] = %q", got)
	}
}

// TestGatherTiersDegradeWithOverlays pins the optional-interface contract:
// a clean snapshot keeps the zero-copy share and zone pruning tiers, and
// both shut off as soon as overlays exist (an overlaid row could match even
// though its base zone cannot).
func TestGatherTiersDegradeWithOverlays(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	clean := m.Snapshot()
	scan := clean.ScanLabel(s.Person)
	if clean.ShareScanColumn(s.Person, s.PCreation, scan) == nil {
		t.Fatal("clean snapshot refused zero-copy share")
	}
	var sel vector.Bitset
	sel.Resize(len(scan), true)
	if _, total := clean.PruneZones(scan, s.Person, s.PCreation, 0, 1, &sel); total == 0 {
		t.Fatal("clean snapshot refused zone pruning")
	}

	tx := m.Begin([]vector.VID{f.Persons[0]})
	if err := tx.SetProp(f.Persons[0], s.PCreation, vector.Date(7)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	dirty := m.Snapshot()
	if dirty.ShareScanColumn(s.Person, s.PCreation, scan) != nil {
		t.Fatal("overlaid snapshot must not share the base column")
	}
	if pruned, total := dirty.PruneZones(scan, s.Person, s.PCreation, 0, 1, &sel); pruned != 0 || total != 0 {
		t.Fatal("overlaid snapshot must not prune zones")
	}
}
