package txn

import (
	"fmt"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// Txn is a write transaction. All writes buffer locally and publish
// atomically at Commit under a single new version; the declared write-set
// locks are held throughout (2PL) and released at the end.
type Txn struct {
	m       *Manager
	locked  []vector.VID
	readVer uint64
	done    bool

	newVerts   []pendingVertex
	newLabels  map[vector.VID]catalog.LabelID
	propWrites []pendingProp
	edgeWrites []pendingEdge
}

type pendingVertex struct {
	vid   vector.VID
	label catalog.LabelID
	ext   int64
	props []vector.Value
}

type pendingProp struct {
	vid vector.VID
	pid catalog.PropID
	val vector.Value
}

type pendingEdge struct {
	et       catalog.EdgeTypeID
	src, dst vector.VID
	props    []vector.Value
}

// ReadVersion returns the version the transaction started at.
func (t *Txn) ReadVersion() uint64 { return t.readVer }

// AddVertex buffers a new vertex with properties in the label's schema
// order and returns its provisional VID, usable immediately as an edge
// endpoint within this transaction.
func (t *Txn) AddVertex(label catalog.LabelID, ext int64, props ...vector.Value) (vector.VID, error) {
	if t.done {
		return vector.NilVID, errTxnDone
	}
	vid := vector.VID(t.m.nextVID.Add(1) - 1)
	t.newVerts = append(t.newVerts, pendingVertex{
		vid: vid, label: label, ext: ext,
		props: append([]vector.Value(nil), props...),
	})
	if t.newLabels == nil {
		t.newLabels = make(map[vector.VID]catalog.LabelID)
	}
	t.newLabels[vid] = label
	return vid, nil
}

// SetProp buffers a property update on a vertex in the write set (or one
// created by this transaction).
func (t *Txn) SetProp(v vector.VID, pid catalog.PropID, val vector.Value) error {
	if t.done {
		return errTxnDone
	}
	if err := t.requireWritable(v); err != nil {
		return err
	}
	t.propWrites = append(t.propWrites, pendingProp{vid: v, pid: pid, val: val})
	return nil
}

// AddEdge buffers a directed edge between two vertices, each of which must
// be in the declared write set or created by this transaction.
func (t *Txn) AddEdge(et catalog.EdgeTypeID, src, dst vector.VID, props ...vector.Value) error {
	if t.done {
		return errTxnDone
	}
	if err := t.requireWritable(src); err != nil {
		return err
	}
	if err := t.requireWritable(dst); err != nil {
		return err
	}
	t.edgeWrites = append(t.edgeWrites, pendingEdge{
		et: et, src: src, dst: dst,
		props: append([]vector.Value(nil), props...),
	})
	return nil
}

// requireWritable enforces the declared-write-set discipline.
func (t *Txn) requireWritable(v vector.VID) error {
	if _, created := t.newLabels[v]; created {
		return nil
	}
	for _, l := range t.locked {
		if l == v {
			return nil
		}
	}
	return fmt.Errorf("txn: vertex %d is not in the declared write set", v)
}

// labelOfAny resolves a vertex label from the base graph, committed
// overlays, or this transaction's pending vertices.
func (t *Txn) labelOfAny(v vector.VID) (catalog.LabelID, error) {
	if l, ok := t.newLabels[v]; ok {
		return l, nil
	}
	if int(v) < t.m.graph.NumVertices() {
		return t.m.graph.LabelOf(v), nil
	}
	if vo := t.m.overlayOf(v); vo != nil && vo.isNew {
		return vo.label, nil
	}
	return 0, fmt.Errorf("txn: unknown vertex %d", v)
}

// Commit atomically publishes all buffered writes under a fresh version and
// releases the locks.
func (t *Txn) Commit() error {
	if t.done {
		return errTxnDone
	}
	t.done = true
	defer t.m.locks.release(t.locked)

	// Resolve edge endpoint labels before publication.
	type resolvedEdge struct {
		pendingEdge
		srcLabel, dstLabel catalog.LabelID
	}
	edges := make([]resolvedEdge, len(t.edgeWrites))
	for i, e := range t.edgeWrites {
		sl, err := t.labelOfAny(e.src)
		if err != nil {
			return err
		}
		dl, err := t.labelOfAny(e.dst)
		if err != nil {
			return err
		}
		edges[i] = resolvedEdge{pendingEdge: e, srcLabel: sl, dstLabel: dl}
	}

	m := t.m
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	ver := m.version.Load() + 1

	// Publish created vertices.
	for _, nv := range t.newVerts {
		vo := m.ensureOverlay(nv.vid)
		vo.mu.Lock()
		vo.isNew = true
		vo.createdVer = ver
		vo.label = nv.label
		vo.ext = nv.ext
		vo.baseProps = nv.props
		vo.mu.Unlock()

		m.mu.Lock()
		entry := extEntry{vid: nv.vid, ver: ver}
		m.byExt[extKey{label: nv.label, ext: nv.ext}] = entry
		m.byLabel[nv.label] = append(m.byLabel[nv.label], entry)
		m.created = append(m.created, entry)
		m.mu.Unlock()
	}
	// Publish property versions.
	for _, pw := range t.propWrites {
		vo := m.ensureOverlay(pw.vid)
		vo.mu.Lock()
		vo.props = append(vo.props, propVersion{version: ver, pid: pw.pid, val: pw.val})
		vo.mu.Unlock()
	}
	// Publish edges in both directions.
	cat := m.graph.Catalog()
	for _, e := range edges {
		defs := cat.EdgeTypeProps(e.et)
		fwd := m.ensureOverlay(e.src)
		fwd.mu.Lock()
		fwdAdj := fwd.adjFor(adjKey{et: e.et, dir: catalog.Out, dst: e.dstLabel}, defs)
		fwdAdj.append(e.dst, ver, e.props)
		fwd.mu.Unlock()

		rev := m.ensureOverlay(e.dst)
		rev.mu.Lock()
		revAdj := rev.adjFor(adjKey{et: e.et, dir: catalog.In, dst: e.srcLabel}, defs)
		revAdj.append(e.src, ver, e.props)
		rev.mu.Unlock()
	}
	// Release point: snapshots taken after this see version ver.
	m.version.Store(ver)
	return nil
}

// Abort discards buffered writes and releases locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.m.locks.release(t.locked)
}
