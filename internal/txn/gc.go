package txn

import "sort"

// Version-chain garbage collection. Long-running GES instances accumulate
// property versions on hot vertices; GC folds every chain prefix at or below
// a horizon version into its newest entry. Snapshots at versions older than
// the horizon must no longer be read — the standard MVCC GC contract — so
// the manager tracks pinned snapshot versions and exposes the safe horizon.

// pin tracking ------------------------------------------------------------

// AcquireSnapshot returns a snapshot whose version is pinned until Release
// is called; GC never advances past a pinned version.
func (m *Manager) AcquireSnapshot() *Snapshot {
	s := m.Snapshot()
	m.pinMu.Lock()
	m.pins[s.ver]++
	m.pinMu.Unlock()
	s.pinned = true
	return s
}

// Release unpins a snapshot obtained from AcquireSnapshot. It is idempotent
// per snapshot.
func (m *Manager) Release(s *Snapshot) {
	if s == nil || !s.pinned {
		return
	}
	s.pinned = false
	m.pinMu.Lock()
	if m.pins[s.ver] > 1 {
		m.pins[s.ver]--
	} else {
		delete(m.pins, s.ver)
	}
	m.pinMu.Unlock()
}

// GCHorizon returns the newest version that is safe to collect up to: the
// smallest pinned snapshot version (or the current version when nothing is
// pinned).
func (m *Manager) GCHorizon() uint64 {
	cur := m.version.Load()
	m.pinMu.Lock()
	defer m.pinMu.Unlock()
	min := cur
	for v := range m.pins {
		if v < min {
			min = v
		}
	}
	return min
}

// GC compacts every vertex overlay's property version chain below the safe
// horizon: for each property, versions at or below the horizon collapse
// into the single newest one. It returns the number of property versions
// dropped. Edge overlay entries are pure inserts and are never dropped.
func (m *Manager) GC() int {
	horizon := m.GCHorizon()
	m.mu.RLock()
	overlays := make([]*vertexOverlay, 0, len(m.overlays))
	for _, vo := range m.overlays {
		overlays = append(overlays, vo)
	}
	m.mu.RUnlock()

	dropped := 0
	for _, vo := range overlays {
		vo.mu.Lock()
		dropped += compactProps(vo, horizon)
		vo.mu.Unlock()
	}
	m.gcRuns.Add(1)
	return dropped
}

// compactProps rewrites the chain, keeping for each property only the
// newest entry at or below horizon, plus everything above it. The caller
// holds vo.mu.
func compactProps(vo *vertexOverlay, horizon uint64) int {
	if len(vo.props) == 0 {
		return 0
	}
	// Newest survivor per pid at or below the horizon.
	survivors := map[uint16]int{}
	for i, pv := range vo.props {
		if pv.version > horizon {
			continue
		}
		if cur, ok := survivors[uint16(pv.pid)]; !ok || vo.props[cur].version < pv.version {
			survivors[uint16(pv.pid)] = i
		}
	}
	keep := make([]int, 0, len(vo.props))
	for i, pv := range vo.props {
		if pv.version > horizon || survivors[uint16(pv.pid)] == i {
			keep = append(keep, i)
		}
	}
	if len(keep) == len(vo.props) {
		return 0
	}
	sort.Ints(keep)
	next := make([]propVersion, len(keep))
	for j, i := range keep {
		next[j] = vo.props[i]
	}
	dropped := len(vo.props) - len(next)
	vo.props = next
	return dropped
}

// GCRuns reports how many GC passes have completed.
func (m *Manager) GCRuns() int64 { return m.gcRuns.Load() }
