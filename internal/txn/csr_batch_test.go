package txn

import (
	"testing"

	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

// assertBatchMatchesScalar checks the NeighborsBatch contract on a view: run
// i must be the exact concatenation of the scalar Neighbors segments of
// srcs[i].
func assertBatchMatchesScalar(t *testing.T, v storage.View, srcs []vector.VID,
	et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) {
	t.Helper()
	var b storage.Batch
	v.NeighborsBatch(srcs, et, dir, dstLabel, false, &b)
	if len(b.Runs) != len(srcs) {
		t.Fatalf("runs = %d, srcs = %d", len(b.Runs), len(srcs))
	}
	for i, src := range srcs {
		var want []vector.VID
		if src != vector.NilVID {
			for _, seg := range v.Neighbors(nil, src, et, dir, dstLabel, false) {
				want = append(want, seg.VIDs...)
			}
		}
		got := b.Run(i)
		if len(got) != len(want) {
			t.Fatalf("src %d: run length %d want %d", src, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("src %d: run[%d] = %d want %d", src, k, got[k], want[k])
			}
		}
	}
}

// TestSnapshotNeighborsBatch covers the three snapshot regimes: no overlays
// (delegates to the base graph, CSR fast path included), overlays present
// (reference path preserving base-then-overlay order), and a sealed base
// under an overlay snapshot.
func TestSnapshotNeighborsBatch(t *testing.T) {
	f := testgraph.New()
	s := f.Schema
	f.Graph.CompactAdjacency()
	f.Graph.SealCSR()
	m := NewManager(f.Graph)

	clean := m.Snapshot()
	assertBatchMatchesScalar(t, clean, f.Persons, s.Knows, catalog.Out, s.Person)
	assertBatchMatchesScalar(t, clean, f.Persons, s.Knows, catalog.Out, storage.AnyLabel)

	// Commit new edges through the overlay; the sealed base stays untouched.
	p0, p9 := f.Persons[0], f.Persons[9]
	tx := m.Begin([]vector.VID{p0, p9})
	if err := tx.AddEdge(s.Knows, p0, p9, vector.Date(20000)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !f.Graph.CSRSealed() {
		t.Fatal("overlay commit must not unseal the base CSR")
	}

	after := m.Snapshot()
	assertBatchMatchesScalar(t, after, f.Persons, s.Knows, catalog.Out, storage.AnyLabel)
	assertBatchMatchesScalar(t, after, f.Persons, s.Knows, catalog.In, storage.AnyLabel)
	assertBatchMatchesScalar(t, after, f.Persons, s.Knows, catalog.Both, storage.AnyLabel)

	// Overlay-contributed runs must not claim sortedness.
	var b storage.Batch
	after.NeighborsBatch([]vector.VID{p0}, s.Knows, catalog.Out, storage.AnyLabel, false, &b)
	if b.Sorted {
		t.Fatal("overlay-merged batch must not be flagged Sorted")
	}
	// The pre-commit snapshot still matches its own scalar view.
	assertBatchMatchesScalar(t, clean, f.Persons, s.Knows, catalog.Out, storage.AnyLabel)
}
