package txn

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/vector"
)

// extKey indexes transactionally created vertices by (label, external id).
type extKey struct {
	label catalog.LabelID
	ext   int64
}

type extEntry struct {
	vid vector.VID
	ver uint64
}

// Manager is the version manager of §5: it owns the global version counter
// (initialized to zero), the vertex lock table, and the overlay store.
//
// Lock order (checked by geslint rule R2): commit publication holds commitMu
// while installing committed values into per-vertex overlays (vertexOverlay.mu)
// and registering new overlays in the maps (Manager.mu, also via
// ensureOverlay). No path acquires commitMu while holding either inner lock,
// and the two inner locks never nest with each other. Commit also reads the
// catalog (edge-type schemas) under commitMu; Catalog.mu is a leaf read
// lock that no catalog path nests further, so the order is safe.
//
//geslint:lockorder Manager.commitMu < Manager.mu
//geslint:lockorder Manager.commitMu < vertexOverlay.mu
//geslint:lockorder Manager.commitMu < Catalog.mu
type Manager struct {
	graph *storage.Graph
	pool  *storage.Pool

	version atomic.Uint64 // last committed version
	nextVID atomic.Uint64 // next VID for transactionally created vertices

	commitMu sync.Mutex // serializes version assignment + publication

	locks lockTable

	mu       sync.RWMutex // guards the maps below
	overlays map[vector.VID]*vertexOverlay
	byExt    map[extKey]extEntry
	byLabel  map[catalog.LabelID][]extEntry // created vertices per label
	created  []extEntry                     // all created vertices, version-ascending
	count    atomic.Int64                   // number of overlay vertices (fast emptiness check)

	pinMu  sync.Mutex
	pins   map[uint64]int // pinned snapshot versions -> refcount
	gcRuns atomic.Int64
}

// NewManager wraps a bulk-loaded base graph. The base must not be mutated
// once transactions begin.
func NewManager(g *storage.Graph) *Manager {
	m := &Manager{
		graph:    g,
		pool:     storage.NewPool(),
		overlays: make(map[vector.VID]*vertexOverlay),
		byExt:    make(map[extKey]extEntry),
		byLabel:  make(map[catalog.LabelID][]extEntry),
		pins:     make(map[uint64]int),
	}
	m.nextVID.Store(uint64(g.NumVertices()))
	return m
}

// Graph returns the underlying base graph.
func (m *Manager) Graph() *storage.Graph { return m.graph }

// Pool returns the manager's memory pool.
func (m *Manager) Pool() *storage.Pool { return m.pool }

// Version returns the last committed version.
func (m *Manager) Version() uint64 { return m.version.Load() }

// Snapshot returns a non-blocking read view at the current committed
// version.
func (m *Manager) Snapshot() *Snapshot {
	return &Snapshot{m: m, ver: m.version.Load(), hasOverlays: m.count.Load() > 0}
}

// SnapshotAt returns a read view at an explicit version (time travel for
// tests and auditing).
func (m *Manager) SnapshotAt(ver uint64) *Snapshot {
	return &Snapshot{m: m, ver: ver, hasOverlays: m.count.Load() > 0}
}

// overlayOf returns the overlay of v, or nil.
func (m *Manager) overlayOf(v vector.VID) *vertexOverlay {
	m.mu.RLock()
	vo := m.overlays[v]
	m.mu.RUnlock()
	return vo
}

// ensureOverlay returns (creating if needed) the overlay of v.
func (m *Manager) ensureOverlay(v vector.VID) *vertexOverlay {
	m.mu.Lock()
	defer m.mu.Unlock()
	vo, ok := m.overlays[v]
	if !ok {
		vo = &vertexOverlay{adj: make(map[adjKey]*overlayAdj)}
		m.overlays[v] = vo
		m.count.Add(1)
	}
	return vo
}

// Begin starts a write transaction whose write set (the vertices it will
// modify) is declared up front, per the paper: "write queries update the
// graph with known write sets in advance". All locks are acquired here, in
// canonical order, and held until Commit or Abort — two-phase locking
// without deadlock risk.
func (m *Manager) Begin(writeSet []vector.VID) *Txn {
	set := append([]vector.VID(nil), writeSet...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	// Deduplicate after sorting.
	uniq := set[:0]
	var prev vector.VID = vector.NilVID
	for _, v := range set {
		if v != prev {
			uniq = append(uniq, v)
			prev = v
		}
	}
	m.locks.acquire(uniq)
	return &Txn{m: m, locked: uniq, readVer: m.version.Load()}
}

// lockTable is a striped vertex lock table.
type lockTable struct {
	stripes [256]sync.Mutex
}

func (lt *lockTable) stripeOf(v vector.VID) int { return int(v) & 255 }

// stripesOf returns the distinct stripe IDs covering the vertex set, in
// ascending order — the canonical acquisition order shared by all writers,
// which rules out deadlocks.
func (lt *lockTable) stripesOf(vs []vector.VID) []int {
	seen := make(map[int]struct{}, len(vs))
	stripes := make([]int, 0, len(vs))
	for _, v := range vs {
		s := lt.stripeOf(v)
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			stripes = append(stripes, s)
		}
	}
	sort.Ints(stripes)
	return stripes
}

// acquire locks the stripes covering the vertex set in canonical order.
func (lt *lockTable) acquire(vs []vector.VID) {
	for _, s := range lt.stripesOf(vs) {
		lt.stripes[s].Lock()
	}
}

// release unlocks the stripes covering the vertex set.
func (lt *lockTable) release(vs []vector.VID) {
	for _, s := range lt.stripesOf(vs) {
		lt.stripes[s].Unlock()
	}
}

// Stats reports overlay-store gauges (instrumentation).
func (m *Manager) Stats() (overlayVertices int, version uint64) {
	return int(m.count.Load()), m.version.Load()
}

// errTxnDone guards against use-after-finish.
var errTxnDone = fmt.Errorf("txn: transaction already finished")
