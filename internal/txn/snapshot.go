package txn

import (
	"sort"

	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/vector"
)

// Snapshot is a non-blocking, immutable read view at one version: the base
// graph plus every overlay entry committed at or below that version. It
// implements storage.View, so the executor runs against it exactly as it
// runs against the base graph.
type Snapshot struct {
	m           *Manager
	ver         uint64
	hasOverlays bool
	pinned      bool
}

// Version returns the snapshot's version.
func (s *Snapshot) Version() uint64 { return s.ver }

// Catalog implements storage.View.
func (s *Snapshot) Catalog() *catalog.Catalog { return s.m.graph.Catalog() }

// baseCount is the number of vertices in the immutable base.
func (s *Snapshot) baseCount() int { return s.m.graph.NumVertices() }

// LabelOf implements storage.View.
func (s *Snapshot) LabelOf(v vector.VID) catalog.LabelID {
	if int(v) < s.baseCount() {
		return s.m.graph.LabelOf(v)
	}
	vo := s.m.overlayOf(v)
	if vo == nil {
		return 0
	}
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	return vo.label
}

// ExtID implements storage.View.
func (s *Snapshot) ExtID(v vector.VID) int64 {
	if int(v) < s.baseCount() {
		return s.m.graph.ExtID(v)
	}
	vo := s.m.overlayOf(v)
	if vo == nil {
		return 0
	}
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	return vo.ext
}

// VertexByExt implements storage.View.
func (s *Snapshot) VertexByExt(label catalog.LabelID, ext int64) (vector.VID, bool) {
	if vid, ok := s.m.graph.VertexByExt(label, ext); ok {
		return vid, true
	}
	if !s.hasOverlays {
		return vector.NilVID, false
	}
	s.m.mu.RLock()
	e, ok := s.m.byExt[extKey{label: label, ext: ext}]
	s.m.mu.RUnlock()
	if !ok || e.ver > s.ver {
		return vector.NilVID, false
	}
	return e.vid, true
}

// Prop implements storage.View.
func (s *Snapshot) Prop(v vector.VID, p catalog.PropID) vector.Value {
	if s.hasOverlays {
		if vo := s.m.overlayOf(v); vo != nil {
			vo.mu.RLock()
			if val, ok := vo.propAt(p, s.ver); ok {
				vo.mu.RUnlock()
				return val
			}
			if vo.isNew && vo.createdVer <= s.ver {
				var val vector.Value
				if int(p) < len(vo.baseProps) {
					val = vo.baseProps[p]
				}
				kind := vector.KindInvalid
				defs := s.Catalog().LabelProps(vo.label)
				if int(p) < len(defs) {
					kind = defs[p].Kind
				}
				vo.mu.RUnlock()
				if val.Kind == vector.KindInvalid {
					val = vector.Value{Kind: kind}
				}
				return val
			}
			vo.mu.RUnlock()
		}
	}
	if int(v) < s.baseCount() {
		return s.m.graph.Prop(v, p)
	}
	return vector.Value{}
}

// Neighbors implements storage.View: base segments first, then the visible
// prefix of each matching overlay list.
func (s *Snapshot) Neighbors(buf []storage.Segment, src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool) []storage.Segment {
	if dir == catalog.Both {
		buf = s.Neighbors(buf, src, et, catalog.Out, dstLabel, withProps)
		return s.Neighbors(buf, src, et, catalog.In, dstLabel, withProps)
	}
	if int(src) < s.baseCount() {
		buf = s.m.graph.Neighbors(buf, src, et, dir, dstLabel, withProps)
	}
	if !s.hasOverlays {
		return buf
	}
	vo := s.m.overlayOf(src)
	if vo == nil {
		return buf
	}
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	if vo.isNew && vo.createdVer > s.ver {
		return buf
	}
	if dstLabel != storage.AnyLabel {
		if a, ok := vo.adj[adjKey{et: et, dir: dir, dst: dstLabel}]; ok {
			if seg, ok := a.segment(a.visiblePrefix(s.ver), withProps); ok {
				buf = append(buf, seg)
			}
		}
		return buf
	}
	for key, a := range vo.adj {
		if key.et != et || key.dir != dir {
			continue
		}
		if seg, ok := a.segment(a.visiblePrefix(s.ver), withProps); ok {
			buf = append(buf, seg)
		}
	}
	return buf
}

// NeighborsBatch implements storage.View. Without overlays the call
// delegates to the base graph's batched kernel (zero-copy CSR fast path
// included). With overlays it takes the per-source reference path, which
// preserves the scalar merge order — base segments first, then the visible
// overlay prefixes — so batched and scalar reads stay byte-identical;
// Sorted then reports false for any run an overlay contributed to.
func (s *Snapshot) NeighborsBatch(srcs []vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID, withProps bool, out *storage.Batch) {
	if !s.hasOverlays {
		s.m.graph.NeighborsBatch(srcs, et, dir, dstLabel, withProps, out)
		return
	}
	storage.AppendNeighborsBatch(s, srcs, et, dir, dstLabel, withProps, out)
}

// Degree implements storage.View.
func (s *Snapshot) Degree(src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction, dstLabel catalog.LabelID) int {
	n := 0
	for _, seg := range s.Neighbors(nil, src, et, dir, dstLabel, false) {
		n += len(seg.VIDs)
	}
	return n
}

// ScanLabel implements storage.View. With no visible created vertices the
// base slice is returned as-is (zero copy).
func (s *Snapshot) ScanLabel(label catalog.LabelID) []vector.VID {
	base := s.m.graph.ScanLabel(label)
	if !s.hasOverlays {
		return base
	}
	s.m.mu.RLock()
	createdList := s.m.byLabel[label]
	// Visible prefix: created lists are version-ascending.
	n := sort.Search(len(createdList), func(i int) bool { return createdList[i].ver > s.ver })
	var extra []vector.VID
	if n > 0 {
		extra = make([]vector.VID, n)
		for i := 0; i < n; i++ {
			extra[i] = createdList[i].vid
		}
	}
	s.m.mu.RUnlock()
	if len(extra) == 0 {
		return base
	}
	out := make([]vector.VID, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// NumVertices implements storage.View.
func (s *Snapshot) NumVertices() int {
	n := s.baseCount()
	if !s.hasOverlays {
		return n
	}
	s.m.mu.RLock()
	created := s.m.created
	n += sort.Search(len(created), func(i int) bool { return created[i].ver > s.ver })
	s.m.mu.RUnlock()
	return n
}
