// Package txn implements GES's concurrency control (§5): Multi-Version
// Two-Phase Locking with vertex-level versioning. Write transactions declare
// their write sets up front and acquire vertex locks in canonical order
// (two-phase locking without deadlocks); commits publish copy-on-write
// overlays stamped with a global version. Read queries run against
// Snapshots — immutable views combining the base graph with all overlays at
// or below the snapshot version — and never block.
//
// The base storage.Graph stays immutable once transactions start; all
// mutation lives in overlays. Overlay edge lists are append-only and
// version-ascending per vertex, so a snapshot's view of a list is a prefix —
// readers borrow zero-copy prefix views under a brief read lock.
package txn

import (
	"sync"

	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/vector"
)

// adjKey identifies an overlay adjacency family of one vertex.
type adjKey struct {
	et  catalog.EdgeTypeID
	dir catalog.Direction
	dst catalog.LabelID
}

// overlayAdj is a per-vertex, per-family append-only edge list. Entries are
// version-ascending, so visibility at snapshot version s is a prefix.
type overlayAdj struct {
	dsts []vector.VID
	vers []uint64

	propKinds []vector.Kind
	propI64   [][]int64
	propF64   [][]float64
	propStr   [][]string
}

func newOverlayAdj(defs []catalog.PropDef) *overlayAdj {
	a := &overlayAdj{}
	for _, d := range defs {
		a.propKinds = append(a.propKinds, d.Kind)
		a.propI64 = append(a.propI64, nil)
		a.propF64 = append(a.propF64, nil)
		a.propStr = append(a.propStr, nil)
	}
	return a
}

func (a *overlayAdj) append(dst vector.VID, ver uint64, props []vector.Value) {
	a.dsts = append(a.dsts, dst)
	a.vers = append(a.vers, ver)
	for i, k := range a.propKinds {
		var v vector.Value
		if i < len(props) {
			v = props[i]
		}
		switch k {
		case vector.KindInt64, vector.KindDate:
			a.propI64[i] = append(a.propI64[i], v.I)
		case vector.KindFloat64:
			a.propF64[i] = append(a.propF64[i], v.F)
		case vector.KindString:
			a.propStr[i] = append(a.propStr[i], v.S)
		}
	}
}

// visiblePrefix returns how many leading entries have version <= s.
func (a *overlayAdj) visiblePrefix(s uint64) int {
	lo, hi := 0, len(a.vers)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.vers[mid] <= s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// segment renders the visible prefix as a storage segment (views, no copy).
func (a *overlayAdj) segment(n int, withProps bool) (storage.Segment, bool) {
	if n == 0 {
		return storage.Segment{}, false
	}
	seg := storage.Segment{VIDs: a.dsts[:n:n]}
	if withProps {
		for i, k := range a.propKinds {
			switch k {
			case vector.KindInt64, vector.KindDate:
				seg.PropI64 = append(seg.PropI64, a.propI64[i][:n:n])
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindFloat64:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, a.propF64[i][:n:n])
				seg.PropStr = append(seg.PropStr, nil)
			case vector.KindString:
				seg.PropI64 = append(seg.PropI64, nil)
				seg.PropF64 = append(seg.PropF64, nil)
				seg.PropStr = append(seg.PropStr, a.propStr[i][:n:n])
			}
		}
	}
	return seg, true
}

// propVersion is one committed property write.
type propVersion struct {
	version uint64
	pid     catalog.PropID
	val     vector.Value
}

// vertexOverlay is the copy-on-write version chain of one vertex (§5,
// Concurrency Control): new snapshots of the vertex's adjacency and
// properties, never touching the base arrays.
type vertexOverlay struct {
	mu sync.RWMutex

	// Creation metadata for vertices born in a transaction.
	isNew      bool
	createdVer uint64
	label      catalog.LabelID
	ext        int64
	baseProps  []vector.Value // creation-time property row (schema order)

	props []propVersion
	adj   map[adjKey]*overlayAdj
}

// visibleNew reports whether a created vertex exists at snapshot s.
func (vo *vertexOverlay) visibleNew(s uint64) bool {
	return !vo.isNew || vo.createdVer <= s
}

// adjFor returns (creating on demand) the overlay adjacency for key. The
// caller must hold vo.mu.
func (vo *vertexOverlay) adjFor(key adjKey, defs []catalog.PropDef) *overlayAdj {
	if vo.adj == nil {
		vo.adj = make(map[adjKey]*overlayAdj)
	}
	a, ok := vo.adj[key]
	if !ok {
		a = newOverlayAdj(defs)
		vo.adj[key] = a
	}
	return a
}

// propAt returns the newest committed value of pid at or below version s.
func (vo *vertexOverlay) propAt(pid catalog.PropID, s uint64) (vector.Value, bool) {
	for i := len(vo.props) - 1; i >= 0; i-- {
		pv := vo.props[i]
		if pv.pid == pid && pv.version <= s {
			return pv.val, true
		}
	}
	return vector.Value{}, false
}
