package txn

import (
	"fmt"
	"sync"
	"testing"

	"ges/internal/catalog"
	"ges/internal/storage"
	"ges/internal/testgraph"
	"ges/internal/vector"
)

func neighborsOf(v storage.View, src vector.VID, et catalog.EdgeTypeID, dir catalog.Direction) []vector.VID {
	var out []vector.VID
	for _, seg := range v.Neighbors(nil, src, et, dir, storage.AnyLabel, false) {
		out = append(out, seg.VIDs...)
	}
	return out
}

func TestSnapshotSeesOnlyCommittedState(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	before := m.Snapshot()
	p0, p9 := f.Persons[0], f.Persons[9]

	tx := m.Begin([]vector.VID{p0, p9})
	if err := tx.AddEdge(s.Knows, p0, p9, vector.Date(20000)); err != nil {
		t.Fatal(err)
	}
	// Not yet committed: no snapshot sees it.
	mid := m.Snapshot()
	if got := len(neighborsOf(mid, p0, s.Knows, catalog.Out)); got != 3 {
		t.Fatalf("uncommitted edge visible: %d neighbors", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	after := m.Snapshot()
	if got := len(neighborsOf(after, p0, s.Knows, catalog.Out)); got != 4 {
		t.Fatalf("committed edge not visible: %d neighbors", got)
	}
	if got := len(neighborsOf(after, p9, s.Knows, catalog.In)); got != 2 {
		t.Fatalf("reverse edge not visible: %d", got)
	}
	// The old snapshot is immutable.
	if got := len(neighborsOf(before, p0, s.Knows, catalog.Out)); got != 3 {
		t.Fatalf("old snapshot changed: %d neighbors", got)
	}
	if got := len(neighborsOf(mid, p0, s.Knows, catalog.Out)); got != 3 {
		t.Fatalf("mid snapshot changed: %d", got)
	}
}

func TestAddVertexVisibility(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	before := m.Snapshot()
	tx := m.Begin(nil)
	nv, err := tx.AddVertex(s.Person, 555, vector.String_("Zed"), vector.String_("New"), vector.Date(20001))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := m.Snapshot()

	if _, ok := before.VertexByExt(s.Person, 555); ok {
		t.Fatal("old snapshot sees new vertex")
	}
	got, ok := after.VertexByExt(s.Person, 555)
	if !ok || got != nv {
		t.Fatalf("VertexByExt = %d, %v", got, ok)
	}
	if after.LabelOf(nv) != s.Person {
		t.Fatal("label wrong")
	}
	if after.ExtID(nv) != 555 {
		t.Fatal("ext id wrong")
	}
	if v := after.Prop(nv, s.PFirstName); v.S != "Zed" {
		t.Fatalf("prop = %v", v)
	}
	if before.NumVertices()+1 != after.NumVertices() {
		t.Fatalf("NumVertices %d -> %d", before.NumVertices(), after.NumVertices())
	}
	if len(after.ScanLabel(s.Person)) != len(before.ScanLabel(s.Person))+1 {
		t.Fatal("ScanLabel did not grow")
	}
}

func TestSetPropVersions(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	v0 := m.Snapshot()
	tx := m.Begin([]vector.VID{p0})
	if err := tx.SetProp(p0, s.PFirstName, vector.String_("Ada2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v1 := m.Snapshot()

	tx2 := m.Begin([]vector.VID{p0})
	if err := tx2.SetProp(p0, s.PFirstName, vector.String_("Ada3")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	v2 := m.Snapshot()

	if got := v0.Prop(p0, s.PFirstName).S; got != "Ada" {
		t.Fatalf("v0 = %q", got)
	}
	if got := v1.Prop(p0, s.PFirstName).S; got != "Ada2" {
		t.Fatalf("v1 = %q", got)
	}
	if got := v2.Prop(p0, s.PFirstName).S; got != "Ada3" {
		t.Fatalf("v2 = %q", got)
	}
}

func TestWriteSetEnforcement(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	tx := m.Begin([]vector.VID{f.Persons[0]})
	defer tx.Abort()
	if err := tx.SetProp(f.Persons[1], s.PFirstName, vector.String_("x")); err == nil {
		t.Fatal("SetProp outside write set must fail")
	}
	if err := tx.AddEdge(s.Knows, f.Persons[0], f.Persons[1]); err == nil {
		t.Fatal("AddEdge with unlocked endpoint must fail")
	}
	if err := tx.AddEdge(s.Knows, f.Persons[0], f.Persons[0]); err != nil {
		t.Fatalf("self edge within write set should work: %v", err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	tx := m.Begin([]vector.VID{p0})
	if err := tx.SetProp(p0, s.PFirstName, vector.String_("Nope")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := m.Snapshot().Prop(p0, s.PFirstName).S; got != "Ada" {
		t.Fatalf("aborted write visible: %q", got)
	}
	// Locks must be released: a new txn on the same vertex proceeds.
	tx2 := m.Begin([]vector.VID{p0})
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUseAfterFinish(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	tx := m.Begin(nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
	if _, err := tx.AddVertex(f.Schema.Person, 1); err == nil {
		t.Fatal("write after commit must fail")
	}
}

func TestEdgeToNewVertexSameTxn(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	tx := m.Begin([]vector.VID{p0})
	post, err := tx.AddVertex(s.Post, 999, vector.String_("np"), vector.Int64(77), vector.Date(20002))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddEdge(s.HasCreator, post, p0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	ns := neighborsOf(snap, post, s.HasCreator, catalog.Out)
	if len(ns) != 1 || ns[0] != p0 {
		t.Fatalf("creator of new post = %v", ns)
	}
	back := neighborsOf(snap, p0, s.HasCreator, catalog.In)
	found := false
	for _, v := range back {
		if v == post {
			found = true
		}
	}
	if !found {
		t.Fatal("reverse edge to new vertex missing")
	}
	if got := snap.Prop(post, s.MLength); got.I != 77 {
		t.Fatalf("new vertex prop = %v", got)
	}
}

func TestEdgePropsThroughOverlay(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0, p9 := f.Persons[0], f.Persons[9]
	tx := m.Begin([]vector.VID{p0, p9})
	if err := tx.AddEdge(s.Knows, p0, p9, vector.Date(12345)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	segs := m.Snapshot().Neighbors(nil, p0, s.Knows, catalog.Out, s.Person, true)
	var found bool
	for _, seg := range segs {
		for i, v := range seg.VIDs {
			if v == p9 {
				if seg.PropI64[0][i] != 12345 {
					t.Fatalf("overlay edge prop = %d", seg.PropI64[0][i])
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("overlay edge not found with props")
	}
}

// TestConcurrentWritersAndReaders hammers the manager with parallel writers
// (disjoint and overlapping write sets) and readers validating snapshot
// consistency. Run under -race this is the MV2PL safety test.
func TestConcurrentWritersAndReaders(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema

	const writers = 8
	const txPerWriter = 50
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWriter; i++ {
				target := f.Persons[(w+i)%len(f.Persons)]
				tx := m.Begin([]vector.VID{target})
				ext := int64(10_000 + w*txPerWriter + i)
				post, err := tx.AddVertex(s.Post, ext, vector.String_("c"), vector.Int64(ext), vector.Date(ext))
				if err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.AddEdge(s.HasCreator, post, target); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: every snapshot must be internally consistent — each visible
	// post (ext >= 10000) has exactly one creator, and the out-edge count of
	// a person only grows across snapshot versions.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(4)
	for r := 0; r < 4; r++ {
		go func() {
			defer rg.Done()
			lastCount := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Snapshot()
				total := 0
				for _, p := range f.Persons {
					total += len(neighborsOf(snap, p, s.HasCreator, catalog.In))
				}
				if total < lastCount {
					t.Errorf("creator edge count regressed: %d -> %d", lastCount, total)
					return
				}
				lastCount = total
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	snap := m.Snapshot()
	total := 0
	for _, p := range f.Persons {
		total += len(neighborsOf(snap, p, s.HasCreator, catalog.In))
	}
	// 12 fixture creator edges + writers*txPerWriter new ones.
	want := 12 + writers*txPerWriter
	if total != want {
		t.Fatalf("final creator edges = %d, want %d", total, want)
	}
	if ov, ver := m.Stats(); ov == 0 || ver != writers*txPerWriter {
		t.Fatalf("stats = %d overlays, version %d", ov, ver)
	}
}

// TestConcurrentSameVertexWriters checks write-write serialization on one
// vertex: all increments survive.
func TestConcurrentSameVertexWriters(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]

	const n = 100
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			tx := m.Begin([]vector.VID{p0})
			// Read-modify-write under the lock: read latest committed.
			cur := m.Snapshot().Prop(p0, s.PCreation).I
			if err := tx.SetProp(p0, s.PCreation, vector.Date(cur+1)); err != nil {
				t.Error(err)
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got := m.Snapshot().Prop(p0, s.PCreation).I
	if got != 19000+n {
		t.Fatalf("lost updates: creationDate = %d, want %d", got, 19000+n)
	}
}

func TestSnapshotAtTimeTravel(t *testing.T) {
	f := testgraph.New()
	m := NewManager(f.Graph)
	s := f.Schema
	p0 := f.Persons[0]
	for i := 0; i < 5; i++ {
		tx := m.Begin([]vector.VID{p0})
		if err := tx.SetProp(p0, s.PFirstName, vector.String_(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for ver := uint64(1); ver <= 5; ver++ {
		snap := m.SnapshotAt(ver)
		if got := snap.Prop(p0, s.PFirstName).S; got != fmt.Sprintf("v%d", ver) {
			t.Fatalf("version %d sees %q", ver, got)
		}
	}
	if got := m.SnapshotAt(0).Prop(p0, s.PFirstName).S; got != "Ada" {
		t.Fatalf("version 0 sees %q", got)
	}
}
