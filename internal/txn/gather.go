package txn

import (
	"ges/internal/catalog"
	"ges/internal/vector"
)

// Batch gather over a snapshot: one bulk copy from the immutable base, then
// committed overlay rows are patched on top. With no overlays the snapshot
// gathers at exactly base-graph speed (and keeps the zero-copy and zone-map
// tiers); with overlays the patch loop mirrors Snapshot.Prop row by row.

// GatherProps implements storage.View.
func (s *Snapshot) GatherProps(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, sel *vector.Bitset, out *vector.Column) {
	g := s.m.graph
	g.GatherProps(vids, label, pid, sel, out)
	if !s.hasOverlays {
		return
	}
	base := vector.VID(s.baseCount())
	for i, v := range vids {
		if sel != nil && !sel.Get(i) {
			continue
		}
		vo := s.m.overlayOf(v)
		if vo == nil {
			continue
		}
		vo.mu.RLock()
		if v >= base {
			if !vo.isNew || vo.createdVer > s.ver || vo.label != label {
				vo.mu.RUnlock()
				continue
			}
		} else if g.LabelOf(v) != label {
			vo.mu.RUnlock()
			continue
		}
		if val, ok := vo.propAt(pid, s.ver); ok {
			vo.mu.RUnlock()
			out.Set(i, val)
			continue
		}
		if v >= base {
			// Creation-time property row of a vertex born in a transaction;
			// missing entries stay the typed zero the base pass left behind.
			var val vector.Value
			if int(pid) < len(vo.baseProps) {
				val = vo.baseProps[pid]
			}
			vo.mu.RUnlock()
			if val.Kind != vector.KindInvalid {
				out.Set(i, val)
			}
			continue
		}
		vo.mu.RUnlock()
	}
}

// GatherExtIDs implements storage.View.
func (s *Snapshot) GatherExtIDs(vids []vector.VID, sel *vector.Bitset, out []int64) {
	g := s.m.graph
	g.GatherExtIDs(vids, sel, out)
	if !s.hasOverlays {
		return
	}
	base := vector.VID(s.baseCount())
	for i, v := range vids {
		if v < base || (sel != nil && !sel.Get(i)) {
			continue
		}
		vo := s.m.overlayOf(v)
		if vo == nil {
			continue
		}
		vo.mu.RLock()
		if vo.isNew && vo.createdVer <= s.ver {
			out[i] = vo.ext
		}
		vo.mu.RUnlock()
	}
}

// ShareScanColumn implements storage.ColumnSharer: without overlays the
// snapshot IS the base, so the zero-copy tier stays available.
func (s *Snapshot) ShareScanColumn(label catalog.LabelID, pid catalog.PropID, vids []vector.VID) *vector.Column {
	if s.hasOverlays {
		return nil
	}
	return s.m.graph.ShareScanColumn(label, pid, vids)
}

// PropDict implements storage.DictProvider. The dictionary is shared with
// the base column; overlay string values are interned into it on gather.
func (s *Snapshot) PropDict(label catalog.LabelID, pid catalog.PropID) *vector.Dict {
	return s.m.graph.PropDict(label, pid)
}

// PruneZones implements storage.ZonePruner. Base zone maps describe base
// values only, so pruning is disabled as soon as overlays exist — an
// overlaid row could match even though its base zone cannot.
func (s *Snapshot) PruneZones(vids []vector.VID, label catalog.LabelID, pid catalog.PropID, lo, hi int64, sel *vector.Bitset) (pruned, total int) {
	if s.hasOverlays {
		return 0, 0
	}
	return s.m.graph.PruneZones(vids, label, pid, lo, hi, sel)
}
