// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at CI scale, plus ablation micro-benchmarks for the design choices
// DESIGN.md calls out (pointer-based join, selection-vector pruning,
// operator fusion, factorized vs flat expansion).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks print their table once (on the first iteration)
// and then time the full experiment; the minutes-scale configurations used
// for EXPERIMENTS.md run through cmd/gesbench instead.
package ges_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ges/internal/bench"
	"ges/internal/catalog"
	"ges/internal/cypher"
	"ges/internal/driver"
	"ges/internal/exec"
	"ges/internal/expr"
	"ges/internal/ldbc"
	"ges/internal/ldbc/queries"
	"ges/internal/op"
	"ges/internal/plan"
	"ges/internal/service"
	"ges/internal/storage"
	"ges/internal/txn"
	"ges/internal/vector"
)

// benchExperiment runs one paper experiment per iteration; the first
// iteration echoes the produced table to stdout so `go test -bench` output
// doubles as a mini-report.
func benchExperiment(b *testing.B, id string) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Quick()
	// Warm the dataset cache outside the timer.
	for _, sf := range cfg.SFs {
		if _, err := driver.SharedDataset(sf); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
		}
		if err := e.Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_DatasetStats(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFigure2_ExecutionAnalysis(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFigure3_OperatorBreakdown(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFigure11_LatencyByVariant(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFigure12_TailLatency(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkTable2_IntermediateMemory(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3_VariantThroughput(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkFigure13_Scalability(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFigure14_ThroughputTrace(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFigure15_CrossSystem(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkTable4_CrossSystemThroughput(b *testing.B) { benchExperiment(b, "table4") }

// ---------------------------------------------------------------------------
// Per-query engine benchmarks (the units behind Figures 2/11).
// ---------------------------------------------------------------------------

var benchDS = struct {
	once sync.Once
	ds   *ldbc.Dataset
}{}

func dataset(b *testing.B) *ldbc.Dataset {
	benchDS.once.Do(func() {
		ds, err := ldbc.Generate(ldbc.Config{SF: 0.1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchDS.ds = ds
	})
	return benchDS.ds
}

func benchQuery(b *testing.B, name string, mode exec.Mode) {
	ds := dataset(b)
	r := queries.NewRunner(ds, mode, nil)
	q, err := queries.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	pg := ds.NewParamGen(1)
	params := q.GenParams(ds, pg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Execute(q, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIC2_Flat(b *testing.B)          { benchQuery(b, "IC2", exec.ModeFlat) }
func BenchmarkIC2_Factorized(b *testing.B)    { benchQuery(b, "IC2", exec.ModeFactorized) }
func BenchmarkIC2_Fused(b *testing.B)         { benchQuery(b, "IC2", exec.ModeFused) }
func BenchmarkIC5_Flat(b *testing.B)          { benchQuery(b, "IC5", exec.ModeFlat) }
func BenchmarkIC5_Factorized(b *testing.B)    { benchQuery(b, "IC5", exec.ModeFactorized) }
func BenchmarkIC5_Fused(b *testing.B)         { benchQuery(b, "IC5", exec.ModeFused) }
func BenchmarkIC9_Flat(b *testing.B)          { benchQuery(b, "IC9", exec.ModeFlat) }
func BenchmarkIC9_Factorized(b *testing.B)    { benchQuery(b, "IC9", exec.ModeFactorized) }
func BenchmarkIC9_Fused(b *testing.B)         { benchQuery(b, "IC9", exec.ModeFused) }
func BenchmarkIS2_Fused(b *testing.B)         { benchQuery(b, "IS2", exec.ModeFused) }
func BenchmarkIC13_ShortestPath(b *testing.B) { benchQuery(b, "IC13", exec.ModeFused) }

// ---------------------------------------------------------------------------
// Ablation benchmarks (design choices called out in DESIGN.md).
// ---------------------------------------------------------------------------

// twoHopPlan builds the paper's canonical two-hop expansion, optionally
// disabling the pointer-based join.
func twoHopPlan(h *ldbc.Handles, personExt int64, noLazy bool) plan.Plan {
	return plan.Plan{
		&op.NodeByIdSeek{Var: "p", Label: h.Person, ExtID: personExt},
		&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, NoLazy: noLazy},
		&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person, NoLazy: noLazy},
		&op.Expand{From: "g", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel, NoLazy: noLazy},
		&op.Limit{N: 1}, // constant-delay early exit keeps the tree cost dominant
	}
}

func benchPointerJoin(b *testing.B, noLazy bool) {
	ds := dataset(b)
	eng := exec.New(exec.ModeFactorized)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := twoHopPlan(ds.H, int64(i%len(ds.Persons))+1, noLazy)
		if _, err := eng.Run(ds.Graph, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PointerJoin_On/Off isolate §5's pointer-based join: the
// lazy segment columns should beat materialized neighbor copies.
func BenchmarkAblation_PointerJoin_On(b *testing.B)  { benchPointerJoin(b, false) }
func BenchmarkAblation_PointerJoin_Off(b *testing.B) { benchPointerJoin(b, true) }

func benchPrune(b *testing.B, noPrune bool) {
	ds := dataset(b)
	eng := exec.New(exec.ModeFactorized)
	h := ds.H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := plan.Plan{
			&op.NodeByIdSeek{Var: "p", Label: h.Person, ExtID: int64(i%len(ds.Persons)) + 1},
			&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
			&op.ProjectProps{Specs: []op.ProjSpec{{Var: "f", As: "f.id", ExtID: true}}},
			// A selective filter: pruning should spare the message expansion
			// for filtered-out friends.
			&op.Filter{Pred: benchFilterPred(), NoPrune: noPrune},
			&op.Expand{From: "f", To: "msg", Et: h.HasCreator, Dir: catalog.In, DstLabel: storage.AnyLabel},
			&op.Limit{N: 10},
		}
		if _, err := eng.Run(ds.Graph, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SelectionPruning_On(b *testing.B)  { benchPrune(b, false) }
func BenchmarkAblation_SelectionPruning_Off(b *testing.B) { benchPrune(b, true) }

// benchFilterPred is a selective friend filter (small external ids are the
// zipf-popular persons).
func benchFilterPred() expr.Expr { return expr.Le(expr.C("f.id"), expr.LInt(20)) }

// ---------------------------------------------------------------------------
// Vectorized gather benchmarks (§5 batch property access).
// ---------------------------------------------------------------------------

// BenchmarkGatherScan sweeps the gather ablation ladder (scalar → batch
// gather → dictionary codes → zone maps) over the string-equality
// fused-filter scan behind BENCH_gather.json. All ops in the plan are pure
// configuration, so the plan is built once outside the timer.
func BenchmarkGatherScan(b *testing.B) {
	ds := dataset(b)
	for _, v := range bench.GatherVariants {
		b.Run(v.Name, func(b *testing.B) {
			eng := v.Engine(exec.ModeFactorized, 1)
			p := bench.GatherScanPlan(ds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatherHorizon measures the zone-map fast exit: a date predicate
// past the stored horizon is proven empty from the zone summaries alone.
func BenchmarkGatherHorizon(b *testing.B) {
	ds := dataset(b)
	for _, v := range bench.GatherVariants {
		b.Run(v.Name, func(b *testing.B) {
			eng := v.Engine(exec.ModeFactorized, 1)
			p := bench.GatherHorizonPlan(ds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// CSR snapshot benchmarks (batched expand + intersection-based cyclic joins).
// ---------------------------------------------------------------------------

// sealedDataset returns the shared benchmark dataset with its adjacency
// families sealed into CSR snapshots (idempotent across benchmarks).
func sealedDataset(b *testing.B) *ldbc.Dataset {
	ds := dataset(b)
	ds.Graph.SealCSR()
	return ds
}

// BenchmarkCSRExpand compares the two-hop expansion with the batched
// adjacency kernel off (per-source scalar walks) and on (one NeighborsBatch
// per morsel over the sealed CSR).
func BenchmarkCSRExpand(b *testing.B) {
	ds := sealedDataset(b)
	for _, v := range bench.CSRVariants[:2] {
		b.Run(v.Name, func(b *testing.B) {
			eng := v.Engine(exec.ModeFactorized, 1)
			p := bench.CSRExpandPlan(ds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRTriangle sweeps the closure ladder behind BENCH_csr.json: the
// pre-ExpandInto flat hash join first, then ExpandInto under each knob
// combination (scalar+hash → csr+hash → csr+intersect).
func BenchmarkCSRTriangle(b *testing.B) {
	ds := sealedDataset(b)
	b.Run("hashjoin-flat", func(b *testing.B) {
		eng := bench.CSRVariants[0].Engine(exec.ModeFactorized, 1)
		p := bench.CSRTriangleJoinPlan(ds)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ds.Graph, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, v := range bench.CSRVariants {
		b.Run(v.Name, func(b *testing.B) {
			eng := v.Engine(exec.ModeFactorized, 1)
			p := bench.CSRTrianglePlan(ds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverlayExpand measures the merged read path under a live delta
// overlay: the full-person batched KNOWS expansion on a clean sealed image,
// then with ~5% of the edge set sitting in per-image deltas (inserts plus
// tombstones), then again after the quiesced reseal drains them. The delta
// point is the steady-state cost readers pay between background reseals. Uses
// a private dataset — the deltas must not leak into the shared one.
func BenchmarkOverlayExpand(b *testing.B) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, h := ds.Graph, ds.H
	expand := func(b *testing.B) {
		var bt storage.Batch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.NeighborsBatch(ds.Persons, h.Knows, catalog.Out, h.Person, false, &bt)
		}
	}
	b.Run("sealed", expand)
	// Never reseal mid-benchmark: the overlay point must keep its delta.
	g.SetResealPolicy(1e9, 1<<30)
	n := g.NumEdges() / 20
	for i := 0; i < n; i++ {
		src := ds.Persons[i%len(ds.Persons)]
		dst := ds.Persons[(i*7+1)%len(ds.Persons)]
		if src == dst {
			continue
		}
		if i%3 == 0 {
			g.DeleteEdge(h.Knows, src, dst)
		} else {
			g.AddEdge(h.Knows, src, dst, vector.Date(int64(src)*31+int64(dst)))
		}
	}
	b.Run("overlay", expand)
	g.CompactAdjacency()
	g.SealCSR()
	b.Run("resealed", expand)
}

// ---------------------------------------------------------------------------
// Morsel-runtime benchmarks (parallel expansion and service plan cache).
// ---------------------------------------------------------------------------

// fusedExpandScalePlan is the morsel-runtime workload: a full-scan two-hop
// expansion whose second hop carries a fused vertex predicate keeping roughly
// half the neighbors, then a parallel property gather and defactorization.
// Rebuilt per iteration so fused predicate state never leaks across runs.
func fusedExpandScalePlan(ds *ldbc.Dataset) plan.Plan {
	h := ds.H
	mid := int64(ds.Stats().Persons / 2)
	return plan.Plan{
		&op.NodeScan{Var: "p", Label: h.Person},
		&op.Expand{From: "p", To: "f", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person},
		&op.Expand{From: "f", To: "g", Et: h.Knows, Dir: catalog.Out, DstLabel: h.Person,
			VertexPred: op.VertexPropPred(expr.Le(expr.C(op.ExtIDProp), expr.LInt(mid)), nil)},
		&op.ProjectProps{Specs: []op.ProjSpec{{Var: "g", As: "g.id", ExtID: true}}},
		&op.Defactor{Cols: []string{"g.id"}},
	}
}

// BenchmarkExpandFusedParallel sweeps the intra-query worker count over the
// fused-predicate expansion. Speedup is visible only with real cores; on a
// single-core host the curve is flat (the scheduler caps helpers at
// GOMAXPROCS and the caller does all the work).
func BenchmarkExpandFusedParallel(b *testing.B) {
	ds := dataset(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := exec.New(exec.ModeFactorized)
			eng.Parallel = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ds.Graph, fusedExpandScalePlan(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServicePlanCache drives POST /query through the service mux with
// 1/2/4/8 concurrent clients repeating one query text, so every request
// after the first hits the compiled-plan cache.
func BenchmarkServicePlanCache(b *testing.B) {
	ds := dataset(b)
	srv := service.NewWith(ds, exec.ModeFused, service.Options{})
	mux := srv.Mux()
	const body = `{"query":"MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1 RETURN COUNT(*) AS friends"}`
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			var failed atomic.Bool
			per, extra := b.N/clients, b.N%clients
			for c := 0; c < clients; c++ {
				n := per
				if c < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
						rec := httptest.NewRecorder()
						mux.ServeHTTP(rec, req)
						if rec.Code != http.StatusOK {
							failed.Store(true)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() {
				b.Fatal("non-200 response from POST /query")
			}
		})
	}
}

// BenchmarkAblation_MV2PLOverhead compares reads on the raw base graph with
// reads through a snapshot carrying committed overlays.
func BenchmarkAblation_MV2PLOverhead(b *testing.B) {
	ds := dataset(b)
	q, _ := queries.ByName("IS3")
	pg := ds.NewParamGen(1)
	params := q.GenParams(ds, pg)

	b.Run("base", func(b *testing.B) {
		r := queries.NewRunner(ds, exec.ModeFused, nil)
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Execute(q, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		mgr := txn.NewManager(ds.Graph)
		r := queries.NewRunnerWith(ds, exec.New(exec.ModeFused), mgr)
		// Commit a write so reads must consult overlays.
		iu8, _ := queries.ByName("IU8")
		if err := iu8.Update(mgr, ds, iu8.GenParams(ds, ds.NewParamGen(2))); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Execute(q, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanner sweeps the cost-based planning ladder behind
// BENCH_planner.json: each adversarially-phrased query compiled as written
// (syntactic) and through the statistics-backed cost model, which re-anchors
// at the selective end and reverses the expansions.
func BenchmarkPlanner(b *testing.B) {
	ds := sealedDataset(b)
	cm := plan.NewCostModel(ds.Graph.Stats())
	for _, pq := range bench.PlannerQueries {
		text := fmt.Sprintf(pq.Text, 1)
		for _, variant := range []struct {
			name string
			cost *plan.CostModel
		}{{"syntactic", nil}, {"cost", cm}} {
			b.Run(pq.Name+"/"+variant.name, func(b *testing.B) {
				c, err := cypher.CompileWith(text, ds.H.Cat, cypher.Options{Cost: variant.cost})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.New(exec.ModeFused).Run(ds.Graph, c.Plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWCOJ sweeps the multiway-intersection ladder behind
// BENCH_wcoj.json on each cyclic pattern: the de-fused binary-join baseline
// (no-wcoj), the multiway operator over hash-set probes (wcoj+hash), then
// the full leapfrog intersection over sorted CSR runs (wcoj).
func BenchmarkWCOJ(b *testing.B) {
	ds := sealedDataset(b)
	patterns := []struct {
		name  string
		build func(*ldbc.Dataset) plan.Plan
	}{
		{"Triangle", bench.WCOJTrianglePlan},
		{"Diamond", bench.WCOJDiamondPlan},
		{"FourCycle", bench.WCOJFourCyclePlan},
		{"FourClique", bench.WCOJFourCliquePlan},
	}
	for _, pat := range patterns {
		for _, v := range bench.WCOJVariants {
			b.Run(pat.name+"/"+v.Name, func(b *testing.B) {
				eng := v.Engine(exec.ModeFactorized, 1)
				p := pat.build(ds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(ds.Graph, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
