// Recommendation: the paper's motivating OLSP scenario (§1, §2.2) — suggest
// new friends and content on a synthetic social network, and show how the
// engine variants (flat / factorized / fused) compare on exactly the same
// queries.
//
// Run with:
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ges"
)

const (
	nPeople    = 600
	nTags      = 40
	avgFriends = 10
)

func build(mode ges.Mode) *ges.DB {
	db := ges.Open(mode)
	must(db.DefineVertexType("Person", ges.Prop{Name: "name", Type: ges.String}))
	must(db.DefineVertexType("Tag", ges.Prop{Name: "topic", Type: ges.String}))
	must(db.DefineVertexType("Post",
		ges.Prop{Name: "title", Type: ges.String},
		ges.Prop{Name: "score", Type: ges.Int64}))
	must(db.DefineEdgeType("KNOWS"))
	must(db.DefineEdgeType("LIKES_TOPIC"))
	must(db.DefineEdgeType("WROTE"))
	must(db.DefineEdgeType("ABOUT"))

	rng := rand.New(rand.NewSource(7))
	for t := int64(1); t <= nTags; t++ {
		must(db.AddVertex("Tag", t, ges.Props{"topic": fmt.Sprintf("topic-%d", t)}))
	}
	for p := int64(1); p <= nPeople; p++ {
		must(db.AddVertex("Person", p, ges.Props{"name": fmt.Sprintf("user-%d", p)}))
		for k := 0; k < 3; k++ {
			must(db.AddEdge("LIKES_TOPIC", "Person", p, "Tag", int64(rng.Intn(nTags))+1, nil))
		}
	}
	// Power-law-ish friendships with locality, symmetric.
	for p := int64(1); p <= nPeople; p++ {
		deg := 1 + rng.Intn(avgFriends*2)
		for k := 0; k < deg; k++ {
			q := p + int64(rng.Intn(30)) - 15
			if q < 1 || q > nPeople || q == p {
				continue
			}
			_ = db.AddEdge("KNOWS", "Person", p, "Person", q, nil) //geslint:err-ok generated endpoints are bounds-checked above; duplicates are harmless
			_ = db.AddEdge("KNOWS", "Person", q, "Person", p, nil) //geslint:err-ok generated endpoints are bounds-checked above; duplicates are harmless
		}
	}
	// Posts tagged with topics.
	post := int64(1)
	for p := int64(1); p <= nPeople; p++ {
		for k := 0; k < 1+rng.Intn(4); k++ {
			must(db.AddVertex("Post", post, ges.Props{
				"title": fmt.Sprintf("post-%d", post),
				"score": int64(rng.Intn(100)),
			}))
			must(db.AddEdge("WROTE", "Person", p, "Post", post, nil))
			must(db.AddEdge("ABOUT", "Post", post, "Tag", int64(rng.Intn(nTags))+1, nil))
			post++
		}
	}
	return db
}

func main() {
	const me = 42

	// People to follow: most prolific authors within two hops.
	friendRec := fmt.Sprintf(`
		MATCH (me:Person)-[:KNOWS*2..2]->(cand)-[:WROTE]->(post)
		WHERE id(me) = %d
		RETURN cand.name AS who, COUNT(*) AS posts, MAX(post.score) AS best
		ORDER BY posts DESC, who ASC
		LIMIT 5`, me)

	// Content to read: highly-scored posts about my topics, written nearby.
	contentRec := fmt.Sprintf(`
		MATCH (me:Person)-[:LIKES_TOPIC]->(t)<-[:ABOUT]-(post)
		WHERE id(me) = %d AND post.score >= 60
		RETURN post.title AS title, post.score AS score
		ORDER BY score DESC, title ASC
		LIMIT 5`, me)

	for _, m := range []struct {
		mode ges.Mode
		name string
	}{{ges.Flat, "GES (flat)"}, {ges.Factorized, "GES_f"}, {ges.Fused, "GES_f*"}} {
		db := build(m.mode)
		start := time.Now()
		friends, err := db.Query(friendRec)
		must(err)
		content, err := db.Query(contentRec)
		must(err)
		fmt.Printf("== %s: both recommendations in %v (peak intermediates %d B)\n",
			m.name, time.Since(start).Round(time.Microsecond),
			friends.Stats.PeakIntermediateBytes+content.Stats.PeakIntermediateBytes)
		if m.mode == ges.Fused {
			fmt.Println("\npeople to follow:")
			for _, row := range friends.Rows {
				fmt.Printf("  %-10s %3d posts (best score %d)\n", row[0], row[1], row[2])
			}
			fmt.Println("posts to read:")
			for _, row := range content.Rows {
				fmt.Printf("  %-12s score %d\n", row[0], row[1])
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
