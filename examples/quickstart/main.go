// Quickstart: open an embedded GES database, define a schema, load a small
// social graph, and run Cypher queries on the factorized engine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ges"
)

func main() {
	db := ges.Open(ges.Fused)

	must(db.DefineVertexType("Person",
		ges.Prop{Name: "name", Type: ges.String},
		ges.Prop{Name: "age", Type: ges.Int64},
	))
	must(db.DefineVertexType("Post",
		ges.Prop{Name: "title", Type: ges.String},
		ges.Prop{Name: "likes", Type: ges.Int64},
	))
	must(db.DefineEdgeType("KNOWS"))
	must(db.DefineEdgeType("WROTE"))

	people := map[int64]struct {
		name string
		age  int64
	}{
		1: {"ada", 36}, 2: {"bob", 29}, 3: {"cyn", 41},
		4: {"dan", 22}, 5: {"eve", 33},
	}
	for id, p := range people {
		must(db.AddVertex("Person", id, ges.Props{"name": p.name, "age": p.age}))
	}
	posts := map[int64]struct {
		author int64
		title  string
		likes  int64
	}{
		1: {2, "on factorization", 42},
		2: {2, "f-trees in practice", 17},
		3: {3, "cache-friendly columns", 99},
		4: {4, "pointer-based joins", 8},
		5: {5, "operator fusion", 61},
	}
	for id, p := range posts {
		must(db.AddVertex("Post", id, ges.Props{"title": p.title, "likes": p.likes}))
		must(db.AddEdge("WROTE", "Person", p.author, "Post", id, nil))
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {3, 5}, {2, 3}} {
		must(db.AddEdge("KNOWS", "Person", e[0], "Person", e[1], nil))
	}

	// Popular posts written by ada's friends-of-friends.
	query := `
		MATCH (me:Person)-[:KNOWS*1..2]->(friend)-[:WROTE]->(post)
		WHERE id(me) = 1 AND post.likes > 10
		RETURN friend.name, post.title, post.likes
		ORDER BY post.likes DESC
		LIMIT 3`

	plan, err := db.Explain(query)
	must(err)
	fmt.Println("plan:", plan)

	res, err := db.Query(query)
	must(err)
	fmt.Printf("\n%-8s %-26s %s\n", "friend", "post", "likes")
	for _, row := range res.Rows {
		fmt.Printf("%-8s %-26s %d\n", row[0], row[1], row[2])
	}
	fmt.Printf("\npeak intermediate bytes: %d, duration: %.3fms\n",
		res.Stats.PeakIntermediateBytes, float64(res.Stats.DurationNanos)/1e6)

	// Live updates: the first query sealed the database, so writes now run
	// as MV2PL transactions and become visible to subsequent snapshots.
	must(db.AddVertex("Person", 6, ges.Props{"name": "fay", "age": 27}))
	must(db.AddEdge("KNOWS", "Person", 1, "Person", 6, nil))
	res, err = db.Query(`
		MATCH (me:Person)-[:KNOWS]->(f) WHERE id(me) = 1
		RETURN COUNT(*) AS directFriends`)
	must(err)
	fmt.Printf("\nada's direct friends after update: %v\n", res.Rows[0][0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
