// Fraud detection: the paper's anti-fraud scenario (§1, §2.2) — trace money
// flows through an account/transfer graph and surface accounts whose
// multi-hop neighborhood funnels funds into known-bad accounts.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ges"
)

const (
	nAccounts = 2000
	nFlagged  = 12
)

func main() {
	db := ges.Open(ges.Fused)
	must(db.DefineVertexType("Account",
		ges.Prop{Name: "owner", Type: ges.String},
		ges.Prop{Name: "risk", Type: ges.Int64}, // 1 = flagged by compliance
	))
	must(db.DefineEdgeType("TRANSFER", ges.Prop{Name: "amount", Type: ges.Int64}))

	rng := rand.New(rand.NewSource(99))
	flagged := map[int64]bool{}
	for len(flagged) < nFlagged {
		flagged[int64(rng.Intn(nAccounts))+1] = true
	}
	for a := int64(1); a <= nAccounts; a++ {
		risk := int64(0)
		if flagged[a] {
			risk = 1
		}
		must(db.AddVertex("Account", a, ges.Props{
			"owner": fmt.Sprintf("acct-%04d", a),
			"risk":  risk,
		}))
	}
	// Random transfer topology plus deliberate funnels into flagged
	// accounts ("money mule" chains).
	for a := int64(1); a <= nAccounts; a++ {
		for k := 0; k < 2+rng.Intn(4); k++ {
			b := int64(rng.Intn(nAccounts)) + 1
			if b == a {
				continue
			}
			amount := int64(10 + rng.Intn(5000))
			must(db.AddEdge("TRANSFER", "Account", a, "Account", b, ges.Props{"amount": amount}))
		}
	}
	for f := range flagged {
		for k := 0; k < 15; k++ {
			src := int64(rng.Intn(nAccounts)) + 1
			if src == f {
				continue
			}
			must(db.AddEdge("TRANSFER", "Account", src, "Account", f,
				ges.Props{"amount": int64(9000 + rng.Intn(900))}))
		}
	}

	// 1. Accounts sending unusually large transfers straight to flagged
	//    accounts.
	direct, err := db.Query(`
		MATCH (src:Account)-[:TRANSFER]->(dst:Account)
		WHERE dst.risk = 1
		RETURN src.owner AS sender, COUNT(*) AS hits
		ORDER BY hits DESC, sender ASC
		LIMIT 5`)
	must(err)
	fmt.Println("accounts transferring into flagged accounts:")
	for _, row := range direct.Rows {
		fmt.Printf("  %-12s %d transfers\n", row[0], row[1])
	}

	// 2. Exposure within three hops of a specific account: how much of its
	//    downstream neighborhood is flagged?
	probe := int64(17)
	exposure, err := db.Query(fmt.Sprintf(`
		MATCH (a:Account)-[:TRANSFER*1..3]->(reach:Account)
		WHERE id(a) = %d AND reach.risk = 1
		RETURN COUNT(*) AS flaggedWithin3Hops`, probe))
	must(err)
	fmt.Printf("\naccount %d can reach %v flagged account(s) within 3 hops\n",
		probe, exposure.Rows[0][0])

	// 3. Compliance sweep: riskiest corridors by total amount transferred
	//    into flagged accounts (aggregate + top-k runs fused).
	corridors, err := db.Query(`
		MATCH (src:Account)-[:TRANSFER]->(dst:Account)
		WHERE dst.risk = 1
		RETURN dst.owner AS sink, COUNT(*) AS inbound
		ORDER BY inbound DESC
		LIMIT 3`)
	must(err)
	fmt.Println("\nhighest-inflow flagged accounts:")
	for _, row := range corridors.Rows {
		fmt.Printf("  %-12s %d inbound transfers\n", row[0], row[1])
	}
	fmt.Printf("\n(query ran with peak intermediates of %d bytes)\n",
		corridors.Stats.PeakIntermediateBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
