package ges

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ges/internal/catalog"
	"ges/internal/vector"
)

// CSV bulk loading. Both loaders expect a header row; property columns are
// matched by name against the schema and may appear in any order or be
// omitted (missing properties store typed zeros). Values parse per the
// schema's type: integers, floats, "true"/"false", and day-number dates.

// LoadVerticesCSV ingests vertices of one label. The first header column
// must be "id" (the external identifier); every other header must name a
// schema property. It returns the number of vertices loaded.
func (db *DB) LoadVerticesCSV(label string, r io.Reader) (int, error) {
	l, ok := db.cat.Label(label)
	if !ok {
		return 0, fmt.Errorf("ges: unknown label %q", label)
	}
	defs := db.cat.LabelProps(l)
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("ges: reading CSV header: %w", err)
	}
	if len(header) == 0 || header[0] != "id" {
		return 0, fmt.Errorf("ges: vertex CSV must start with an %q column", "id")
	}
	colDef, err := mapHeader(header[1:], defs)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("ges: CSV row %d: %w", n+2, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return n, fmt.Errorf("ges: CSV row %d: bad id %q", n+2, rec[0])
		}
		props := Props{}
		for i, d := range colDef {
			if d == nil {
				continue
			}
			v, err := parseCSVValue(rec[i+1], d.Kind)
			if err != nil {
				return n, fmt.Errorf("ges: CSV row %d, column %q: %w", n+2, d.Name, err)
			}
			props[d.Name] = v
		}
		if err := db.AddVertex(label, id, props); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// LoadEdgesCSV ingests edges of one type between two labels. The first two
// header columns must be "src" and "dst" (external identifiers); remaining
// headers name edge properties. It returns the number of edges loaded.
func (db *DB) LoadEdgesCSV(etype, srcLabel, dstLabel string, r io.Reader) (int, error) {
	et, ok := db.cat.EdgeType(etype)
	if !ok {
		return 0, fmt.Errorf("ges: unknown edge type %q", etype)
	}
	defs := db.cat.EdgeTypeProps(et)
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("ges: reading CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "src" || header[1] != "dst" {
		return 0, fmt.Errorf("ges: edge CSV must start with %q,%q columns", "src", "dst")
	}
	colDef, err := mapHeader(header[2:], defs)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("ges: CSV row %d: %w", n+2, err)
		}
		src, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return n, fmt.Errorf("ges: CSV row %d: bad src %q", n+2, rec[0])
		}
		dst, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return n, fmt.Errorf("ges: CSV row %d: bad dst %q", n+2, rec[1])
		}
		props := Props{}
		for i, d := range colDef {
			if d == nil {
				continue
			}
			v, err := parseCSVValue(rec[i+2], d.Kind)
			if err != nil {
				return n, fmt.Errorf("ges: CSV row %d, column %q: %w", n+2, d.Name, err)
			}
			props[d.Name] = v
		}
		if err := db.AddEdge(etype, srcLabel, src, dstLabel, dst, props); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// mapHeader resolves CSV columns to schema property definitions.
func mapHeader(cols []string, defs []catalog.PropDef) ([]*catalog.PropDef, error) {
	out := make([]*catalog.PropDef, len(cols))
	for i, name := range cols {
		found := false
		for j := range defs {
			if defs[j].Name == name {
				out[i] = &defs[j]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ges: CSV column %q is not in the schema", name)
		}
	}
	return out, nil
}

// parseCSVValue converts one CSV field to the facade value for a kind.
func parseCSVValue(s string, k vector.Kind) (any, error) {
	switch k {
	case vector.KindInt64, vector.KindDate:
		if s == "" {
			return int64(0), nil
		}
		return strconv.ParseInt(s, 10, 64)
	case vector.KindFloat64:
		if s == "" {
			return float64(0), nil
		}
		return strconv.ParseFloat(s, 64)
	case vector.KindBool:
		if s == "" {
			return false, nil
		}
		return strconv.ParseBool(s)
	case vector.KindString:
		return s, nil
	default:
		return nil, fmt.Errorf("unsupported kind %s", k)
	}
}
