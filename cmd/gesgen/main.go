// Command gesgen generates the LDBC-SNB-like benchmark dataset at a given
// simulated scale factor and prints its statistics (the Table 1 row), plus a
// per-label census with -v.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ges/internal/catalog"
	"ges/internal/ldbc"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.1, "simulated scale factor (persons ≈ 1100·sf)")
		seed    = flag.Int64("seed", 1, "generator seed")
		verbose = flag.Bool("v", false, "print the per-label census")
	)
	flag.Parse()

	start := time.Now()
	ds, err := ldbc.Generate(ldbc.Config{SF: *sf, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesgen:", err)
		os.Exit(1)
	}
	fmt.Println(ds.Stats())
	fmt.Printf("generated in %v\n", time.Since(start).Round(time.Millisecond))

	if *verbose {
		cat := ds.H.Cat
		fmt.Println("\nlabel census:")
		for l := 0; l < cat.NumLabels(); l++ {
			id := catalog.LabelID(l)
			fmt.Printf("  %-12s %d\n", cat.LabelName(id), ds.Graph.CountLabel(id))
		}
		fmt.Printf("\nadjacency slots abandoned by regrowth: %d\n", ds.Graph.DeadSlots())
	}
}
