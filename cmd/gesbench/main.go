// Command gesbench regenerates the paper's evaluation tables and figures
// (§6) at simulated laptop scale.
//
// Usage:
//
//	gesbench -exp table2            # one experiment
//	gesbench -exp all               # the whole evaluation section
//	gesbench -exp fig11 -quick      # CI-sized configuration
//	gesbench -list                  # enumerate experiment IDs
//	gesbench -exp parallel -quick -json BENCH_parallel.json
//	                                # morsel-runtime scaling + JSON artifact
//	gesbench -exp csr -quick -json BENCH_csr.json
//	                                # CSR batched expand + intersection joins
//	gesbench -exp mem -quick -json BENCH_mem.json
//	                                # memory recycling vs -no-recycle ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ges/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick    = flag.Bool("quick", false, "CI-sized configuration")
		list     = flag.Bool("list", false, "list experiment ids")
		sfs      = flag.String("sf", "", "comma-separated simulated scale factors (overrides preset)")
		runs     = flag.Int("runs", 0, "parameter draws per query measurement (overrides preset)")
		workers  = flag.Int("workers", 0, "workers for throughput runs (overrides preset)")
		ops      = flag.Int("ops", 0, "operations per throughput run (overrides preset)")
		jsonOut  = flag.String("json", "", "path for machine-readable output (e.g. BENCH_parallel.json for -exp parallel)")
		noGather = flag.Bool("no-gather", false, "disable the vectorized gather path (batch column access, dict-code compares, zone maps); every experiment then runs the scalar per-row reference")
		noCSR    = flag.Bool("no-csr", false, "disable the batched adjacency kernel (NeighborsBatch over sealed CSR snapshots); expansion runs the per-source scalar reference")
		noInter  = flag.Bool("no-intersect", false, "disable the merge/galloping intersection in ExpandInto; cyclic joins close through the hash-set probe")
		noWCOJ   = flag.Bool("no-wcoj", false, "de-fuse ExpandIntersect into the classical binary-join plan (expand then per-edge ExpandInto)")
		noCost   = flag.Bool("no-cost", false, "disable cost-based Cypher planning; plans bind in syntactic order, as written")
		noRecyc  = flag.Bool("no-recycle", false, "disable executor memory recycling (query arenas, reusable f-Trees, pooled morsel scratch); every scratch request allocates fresh")
		noOvl    = flag.Bool("no-overlay", false, "disable the delta-overlay CSR in -exp update; sealed images invalidate on mutation and the harness serializes readers against the writer")
		resealFr = flag.Float64("reseal-frac", 0, "background-reseal threshold for -exp update: reseal a family once its delta exceeds this fraction of its sealed entries (0 = storage default)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	if *sfs != "" {
		cfg.SFs = nil
		for _, part := range strings.Split(*sfs, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(err)
			}
			cfg.SFs = append(cfg.SFs, f)
		}
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *ops > 0 {
		cfg.MixOps = *ops
	}
	cfg.JSONPath = *jsonOut
	cfg.NoGather = *noGather
	cfg.NoCSR = *noCSR
	cfg.NoIntersect = *noInter
	cfg.NoWCOJ = *noWCOJ
	cfg.NoCost = *noCost
	cfg.NoRecycle = *noRecyc
	cfg.NoOverlay = *noOvl
	cfg.ResealFraction = *resealFr

	exps := bench.All()
	if *exp != "all" {
		e, err := bench.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gesbench:", err)
	os.Exit(1)
}
