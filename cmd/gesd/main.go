// Command gesd is the Graph Engine *Service*: an HTTP server exposing the
// engine over a small JSON API, serving the LDBC-SNB-like dataset.
//
// Endpoints:
//
//	POST /query   {"query": "MATCH ... RETURN ..."}            → result table
//	POST /ldbc    {"name": "IC9", "params": {"personId": 42}}  → workload query
//	GET  /stats                                                → dataset gauges
//	GET  /healthz                                              → liveness
//
// Example:
//
//	gesd -addr :8080 -sf 0.1 -mode fused
//	curl -s localhost:8080/query -d '{"query":
//	  "MATCH (p:Person)-[:KNOWS*1..2]->(f) WHERE id(p) = 1 RETURN COUNT(*) AS friends"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"

	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		sf       = flag.Float64("sf", 0.1, "simulated scale factor of the served dataset")
		seed     = flag.Int64("seed", 1, "dataset seed")
		mode     = flag.String("mode", "fused", "engine variant: flat | factorized | fused")
		parallel = flag.Int("parallel", 1, "intra-query worker count per request (morsel runtime)")
		cacheSz  = flag.Int("plan-cache", service.DefaultPlanCacheSize, "compiled-plan LRU capacity")
		noCost   = flag.Bool("no-cost", false, "disable cost-based planning (bind patterns as written)")
	)
	flag.Parse()

	var m exec.Mode
	switch strings.ToLower(*mode) {
	case "flat":
		m = exec.ModeFlat
	case "factorized":
		m = exec.ModeFactorized
	case "fused":
		m = exec.ModeFused
	default:
		log.Fatalf("gesd: unknown mode %q", *mode)
	}

	log.Printf("generating dataset (simSF=%g)...", *sf)
	ds, err := ldbc.Generate(ldbc.Config{SF: *sf, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset ready: %s", ds.Stats())

	srv := service.NewWith(ds, m, service.Options{Parallel: *parallel, PlanCacheSize: *cacheSz, NoCost: *noCost})
	log.Printf("gesd (%s engine) listening on %s", m, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Mux()))
}
