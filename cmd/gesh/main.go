// Command gesh is an interactive shell for GES: it loads a snapshot file
// (or generates the LDBC-like benchmark dataset) and evaluates Cypher
// queries from stdin, printing result tables.
//
//	gesh -ldbc 0.1            # explore the generated benchmark dataset
//	gesh -snap graph.ges      # explore a snapshot saved with DB.Save
//
// Shell commands:
//
//	:help                 command summary
//	:mode flat|factorized|fused
//	:explain <query>      show the physical plan without running it
//	:stats                dataset gauges
//	:quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/plan"
	"ges/internal/storage"
	"ges/internal/txn"
	"ges/internal/vector"
)

func main() {
	var (
		sf   = flag.Float64("ldbc", 0, "generate and load the benchmark dataset at this simulated scale factor")
		snap = flag.String("snap", "", "load a snapshot file saved with DB.Save")
		seed = flag.Int64("seed", 1, "dataset seed")
	)
	flag.Parse()

	var (
		compile func(string) (plan.Plan, error)
		view    storage.View
		statsFn func() string
	)
	switch {
	case *snap != "":
		f, err := os.Open(*snap)
		if err != nil {
			fatal(err)
		}
		g, cat, err := storage.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		mgr := txn.NewManager(g)
		view = mgr.Snapshot()
		compile = func(src string) (plan.Plan, error) { return cypher.Compile(src, cat) }
		statsFn = func() string {
			return fmt.Sprintf("%d vertices, %d edges, %s", g.NumVertices(), g.NumEdges(),
				ldbc.FmtBytes(g.MemBytes()))
		}
	default:
		scale := *sf
		if scale == 0 {
			scale = 0.05
		}
		fmt.Fprintf(os.Stderr, "generating benchmark dataset (simSF=%g)...\n", scale)
		ds, err := ldbc.Generate(ldbc.Config{SF: scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		view = ds.Graph
		compile = func(src string) (plan.Plan, error) { return cypher.Compile(src, ds.H.Cat) }
		statsFn = func() string { return ds.Stats().String() }
	}

	mode := exec.ModeFused
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(os.Stderr, `gesh ready — Cypher on one line, :help for commands`)
	for {
		fmt.Fprintf(os.Stderr, "ges(%s)> ", mode)
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Println(":mode flat|factorized|fused — switch engine variant")
			fmt.Println(":explain <query>            — show the physical plan")
			fmt.Println(":stats                      — dataset gauges")
			fmt.Println(":quit                       — leave")
		case line == ":stats":
			fmt.Println(statsFn())
		case strings.HasPrefix(line, ":mode"):
			switch strings.TrimSpace(strings.TrimPrefix(line, ":mode")) {
			case "flat":
				mode = exec.ModeFlat
			case "factorized":
				mode = exec.ModeFactorized
			case "fused":
				mode = exec.ModeFused
			default:
				fmt.Println("usage: :mode flat|factorized|fused")
			}
		case strings.HasPrefix(line, ":explain"):
			p, err := compile(strings.TrimSpace(strings.TrimPrefix(line, ":explain")))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if mode == exec.ModeFused {
				p = plan.Fuse(p)
			}
			fmt.Println(p)
		default:
			p, err := compile(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			eng := exec.New(mode)
			start := time.Now()
			res, err := eng.Run(view, p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printTable(res)
			fmt.Fprintf(os.Stderr, "(%d rows in %v, peak intermediates %s)\n",
				res.Block.NumRows(), time.Since(start).Round(time.Microsecond),
				ldbc.FmtBytes(res.PeakMem))
		}
	}
}

// printTable renders a result block with column-width alignment.
func printTable(res *exec.Result) {
	fb := res.Block
	widths := make([]int, len(fb.Names))
	for i, n := range fb.Names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(fb.Rows))
	for r, row := range fb.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := renderValue(v)
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, n := range fb.Names {
		fmt.Printf("%-*s  ", widths[i], n)
	}
	fmt.Println()
	for _, row := range cells {
		for c, s := range row {
			fmt.Printf("%-*s  ", widths[c], s)
		}
		fmt.Println()
	}
}

func renderValue(v vector.Value) string { return v.String() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gesh:", err)
	os.Exit(1)
}
