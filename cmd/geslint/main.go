// Command geslint is the GES invariant analyzer: six structural rules
// (R1–R6, see rules.go) enforced over the whole module with nothing but the
// standard library's go/ast, go/parser and go/types — no x/tools dependency,
// so it builds wherever the engine does.
//
// Usage:
//
//	geslint [-json] [packages]
//
// Package patterns are accepted for familiarity but the analyzer always
// loads the enclosing module in full: the rules are module-scoped (lock
// orders and ownership boundaries cross package lines). Exit status is 0
// when the module is clean, 1 when findings are reported, 2 on load or
// type-check failure.
//
// Deliberate exceptions are annotated in source:
//
//	//geslint:scalar-ok               file may use scalar View.Prop/ExtID (R1)
//	//geslint:lockorder A < B         declares lock A is acquired before B (R2)
//	//geslint:selwrite-ok             file may write selection vectors (R3)
//	//geslint:go-ok                   the go statement on/below this line (R5)
//	//geslint:statswrite-ok           file may write internal/stats values (R6)
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	dir := flag.String("C", ".", "analyze the module containing this directory")
	flag.Parse()

	mod, err := loadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := runRules(mod)
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		writeText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geslint: %d finding(s) in %s\n", len(diags), mod.Path)
		os.Exit(1)
	}
}
