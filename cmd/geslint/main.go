// Command geslint is the GES invariant analyzer: eleven rules (R1–R11, see
// internal/lint) enforced over the whole module with nothing but the
// standard library's go/ast, go/parser and go/types — no x/tools
// dependency, so it builds wherever the engine does.
//
// R1–R6 are structural ownership rules; R7–R11 are interprocedural,
// answered from module-wide per-function summaries (allocations, lock
// acquisitions, spawns, parameter retention, discarded errors, pool
// discharges) computed to a fixed point over the call graph by
// internal/lint.
//
// Usage:
//
//	geslint [-json] [packages]
//
// Package patterns are accepted for familiarity but the analyzer always
// loads the enclosing module in full: the rules are module-scoped (lock
// orders, call graphs, and ownership boundaries cross package lines). Exit
// status is 0 when the module is clean, 1 when findings are reported, 2 on
// load or type-check failure.
//
// Deliberate exceptions and markers are annotated in source; directives
// marked <why> require a one-line justification or they are inert and
// themselves a finding:
//
//	//geslint:scalar-ok               file may use scalar View.Prop/ExtID (R1)
//	//geslint:lockorder A < B         declares lock A is acquired before B (R2)
//	//geslint:selwrite-ok             file may write selection vectors (R3)
//	//geslint:go-ok                   the go statement on/below this line (R5)
//	//geslint:statswrite-ok           file may write internal/stats values (R6)
//	//geslint:kernel                  func must be transitively pure (R7)
//	//geslint:alloc-ok <why>          waives one impure site in a kernel path (R7)
//	//geslint:snapshot-owner <why>    type may hold snapshot-derived values (R8)
//	//geslint:retain-ok <why>         waives one snapshot escape site (R8)
//	//geslint:atomicptr               field read via Load, written at seals (R9)
//	//geslint:seal <why>              func is a sanctioned publication site (R9)
//	//geslint:err-ok <why>            waives one discarded-error site (R10)
//	//geslint:leak-ok <why>           waives one undischarged pool acquire (R11)
package main

import (
	"flag"
	"fmt"
	"os"

	"ges/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	dir := flag.String("C", ".", "analyze the module containing this directory")
	flag.Parse()

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(mod)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		lint.WriteText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geslint: %d finding(s) in %s\n", len(diags), mod.Path)
		os.Exit(1)
	}
}
