// Package storage stubs the read surface operators program against.
package storage

import "ges/internal/vector"

// View is the per-query read interface; Prop and ExtID are the scalar
// lookups R1 polices inside internal/op.
type View interface {
	Prop(v vector.VID, pid int32) vector.Value
	ExtID(v vector.VID) int64
}
