// Package storage stubs the read surface operators program against.
package storage

import "ges/internal/vector"

// Segment is one contiguous slice of a vertex's adjacency.
type Segment struct {
	VIDs []vector.VID
}

// View is the per-query read interface; Prop, ExtID, and Neighbors are the
// scalar reads R1 polices inside internal/op.
type View interface {
	Prop(v vector.VID, pid int32) vector.Value
	ExtID(v vector.VID) int64
	Neighbors(buf []Segment, v vector.VID, et int32, dir int32, dstLabel int32, withProps bool) []Segment
}
