package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation markers: `// want R3`.
var wantRe = regexp.MustCompile(`//\s*want\s+(R\d)\b`)

// fixtureWants scans the fixture module for `// want Rn` markers and returns
// them as "file:line:rule" keys (file relative to the fixture root).
func fixtureWants(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return werr
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), i+1, m[1])] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRulesOnFixtureModule loads the miniature module under testdata/src —
// stub packages published under the real import paths — and checks the
// analyzer's findings against the `// want Rn` markers exactly: every marked
// line must be found (one positive case per rule) and nothing else may be
// flagged (the negative cases).
func TestRulesOnFixtureModule(t *testing.T) {
	root := filepath.Join("testdata", "src")
	mod, err := loadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "ges" {
		t.Fatalf("fixture module path = %q, want ges", mod.Path)
	}
	diags := runRules(mod)

	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Rule)] = true
	}
	want := fixtureWants(t, root)

	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, k := range missing {
		t.Errorf("expected finding not reported: %s", k)
	}
	for _, k := range extra {
		t.Errorf("unexpected finding: %s", k)
	}

	// Every rule must have at least one positive case in the fixture, so a
	// rule silently dying cannot pass the test.
	for _, rule := range []string{"R1", "R2", "R3", "R4", "R5"} {
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture has no positive case for %s", rule)
		}
	}
}

// TestSelfClean runs the analyzer over the real module: after the deliberate
// exceptions were annotated, `geslint ./...` must be clean — the same gate
// CI enforces.
func TestSelfClean(t *testing.T) {
	mod, err := loadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags := runRules(mod)
	for _, d := range diags {
		t.Errorf("module not clean: %s", d)
	}
}

// TestJSONOutput checks the -json encoding: an empty run emits a JSON array
// (not null), and findings round-trip with all fields.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty findings encode as %q, want []", got)
	}

	in := []Diag{{File: "internal/op/x.go", Line: 3, Col: 7, Rule: "R5", Msg: "raw go statement"}}
	buf.Reset()
	if err := writeJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Diag
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round-trip = %+v, want %+v", out, in)
	}
	if !strings.Contains(buf.String(), `"rule": "R5"`) {
		t.Fatalf("JSON missing rule field: %s", buf.String())
	}
}
