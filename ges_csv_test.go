package ges_test

import (
	"strings"
	"testing"

	"ges"
)

func csvDB(t *testing.T) *ges.DB {
	t.Helper()
	db := ges.Open(ges.Fused)
	if err := db.DefineVertexType("Person",
		ges.Prop{Name: "name", Type: ges.String},
		ges.Prop{Name: "age", Type: ges.Int64},
		ges.Prop{Name: "score", Type: ges.Float64},
		ges.Prop{Name: "active", Type: ges.Bool}); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineEdgeType("KNOWS", ges.Prop{Name: "since", Type: ges.Date}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadVerticesCSV(t *testing.T) {
	db := csvDB(t)
	// Columns reordered vs schema, "score" omitted.
	n, err := db.LoadVerticesCSV("Person", strings.NewReader(
		"id,age,name,active\n"+
			"1,30,ada,true\n"+
			"2,25,bob,false\n"+
			"3,,empty-age,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d vertices", n)
	}
	res, err := db.Query(`MATCH (p:Person) WHERE p.active = TRUE RETURN p.name, p.age, p.score`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "ada" || res.Rows[0][1] != int64(30) || res.Rows[0][2] != float64(0) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoadEdgesCSV(t *testing.T) {
	db := csvDB(t)
	if _, err := db.LoadVerticesCSV("Person", strings.NewReader("id,name\n1,a\n2,b\n3,c\n")); err != nil {
		t.Fatal(err)
	}
	n, err := db.LoadEdgesCSV("KNOWS", "Person", "Person", strings.NewReader(
		"src,dst,since\n1,2,15000\n1,3,15001\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d edges", n)
	}
	res, err := db.Query(`MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
	                      RETURN f.name ORDER BY f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "b" || res.Rows[1][0] != "c" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := csvDB(t)
	cases := []struct {
		name string
		do   func() error
		frag string
	}{
		{"unknown label", func() error {
			_, err := db.LoadVerticesCSV("Nope", strings.NewReader("id\n1\n"))
			return err
		}, "unknown label"},
		{"missing id header", func() error {
			_, err := db.LoadVerticesCSV("Person", strings.NewReader("name\nada\n"))
			return err
		}, `"id" column`},
		{"unknown property header", func() error {
			_, err := db.LoadVerticesCSV("Person", strings.NewReader("id,ghost\n1,x\n"))
			return err
		}, "not in the schema"},
		{"bad id", func() error {
			_, err := db.LoadVerticesCSV("Person", strings.NewReader("id,name\nxyz,a\n"))
			return err
		}, "bad id"},
		{"bad int value", func() error {
			_, err := db.LoadVerticesCSV("Person", strings.NewReader("id,age\n1,notanumber\n"))
			return err
		}, "age"},
		{"edge header", func() error {
			_, err := db.LoadEdgesCSV("KNOWS", "Person", "Person", strings.NewReader("a,b\n1,2\n"))
			return err
		}, `"src"`},
		{"edge unknown endpoint", func() error {
			_, err := db.LoadEdgesCSV("KNOWS", "Person", "Person", strings.NewReader("src,dst\n98,99\n"))
			return err
		}, "no Person vertex"},
	}
	for _, c := range cases {
		err := c.do()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.frag)
		}
	}
}
