package ges_test

import (
	"strings"
	"sync"
	"testing"

	"ges"
)

func socialDB(t testing.TB, mode ges.Mode) *ges.DB {
	t.Helper()
	db := ges.Open(mode)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.DefineVertexType("Person",
		ges.Prop{Name: "name", Type: ges.String},
		ges.Prop{Name: "age", Type: ges.Int64}))
	must(db.DefineVertexType("Post",
		ges.Prop{Name: "title", Type: ges.String},
		ges.Prop{Name: "score", Type: ges.Int64}))
	must(db.DefineEdgeType("KNOWS"))
	must(db.DefineEdgeType("WROTE"))
	people := []struct {
		id   int64
		name string
		age  int64
	}{{1, "ada", 30}, {2, "bob", 25}, {3, "cyn", 41}, {4, "dan", 22}}
	for _, p := range people {
		must(db.AddVertex("Person", p.id, ges.Props{"name": p.name, "age": p.age}))
	}
	for i := int64(1); i <= 6; i++ {
		must(db.AddVertex("Post", i, ges.Props{"title": "post", "score": i * 10}))
	}
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {1, 3}} {
		must(db.AddEdge("KNOWS", "Person", e[0], "Person", e[1], nil))
	}
	for _, e := range [][2]int64{{1, 1}, {2, 2}, {2, 3}, {3, 4}, {4, 5}, {4, 6}} {
		must(db.AddEdge("WROTE", "Person", e[0], "Post", e[1], nil))
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	for _, mode := range []ges.Mode{ges.Flat, ges.Factorized, ges.Fused} {
		db := socialDB(t, mode)
		res, err := db.Query(`
			MATCH (p:Person)-[:KNOWS]->(f)-[:WROTE]->(post)
			WHERE id(p) = 1 AND post.score >= 30
			RETURN f.name, id(post), post.score
			ORDER BY post.score DESC`)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("mode %d: rows = %v", mode, res.Rows)
		}
		if res.Rows[0][0] != "cyn" || res.Rows[0][2] != int64(40) {
			t.Fatalf("row0 = %v", res.Rows[0])
		}
		if res.Rows[1][0] != "bob" || res.Rows[1][2] != int64(30) {
			t.Fatalf("row1 = %v", res.Rows[1])
		}
		if res.Stats.DurationNanos <= 0 {
			t.Fatal("missing duration stats")
		}
	}
}

func TestWritesAfterSeal(t *testing.T) {
	db := socialDB(t, ges.Fused)
	// First query seals.
	if _, err := db.Query(`MATCH (p:Person) RETURN COUNT(*) AS n`); err != nil {
		t.Fatal(err)
	}
	if err := db.AddVertex("Person", 99, ges.Props{"name": "eve", "age": 19}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEdge("KNOWS", "Person", 1, "Person", 99, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
		MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
		RETURN f.name ORDER BY f.name`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].(string))
	}
	if strings.Join(names, ",") != "bob,cyn,eve" {
		t.Fatalf("names = %v", names)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := socialDB(t, ges.Fused)
	db.Seal()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(100); i < 150; i++ {
			if err := db.AddVertex("Person", i, ges.Props{"name": "w", "age": i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := db.Query(`MATCH (p:Person) RETURN COUNT(*) AS n`)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Rows[0][0].(int64) < 4 {
				t.Errorf("count shrank: %v", res.Rows[0][0])
				return
			}
		}
	}()
	wg.Wait()
}

func TestSchemaErrors(t *testing.T) {
	db := ges.Open(ges.Fused)
	if err := db.DefineVertexType("P"); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineVertexType("P"); err == nil {
		t.Fatal("duplicate label must fail")
	}
	if err := db.AddVertex("Nope", 1, nil); err == nil {
		t.Fatal("unknown label must fail")
	}
	if err := db.AddVertex("P", 1, ges.Props{"ghost": 1}); err == nil {
		t.Fatal("unknown property must fail")
	}
	if err := db.AddEdge("E", "P", 1, "P", 2, nil); err == nil {
		t.Fatal("unknown edge type must fail")
	}
}

func TestExplainShowsFusion(t *testing.T) {
	db := socialDB(t, ges.Fused)
	s, err := db.Explain(`
		MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 1
		RETURN COUNT(*) AS n ORDER BY n DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "AggregateProjectTop(fused)") {
		t.Fatalf("fused plan missing AggregateProjectTop: %s", s)
	}
	if !strings.Contains(s, "SeekExpand(fused)") {
		t.Fatalf("fused plan missing SeekExpand: %s", s)
	}
}

func TestStats(t *testing.T) {
	db := socialDB(t, ges.Fused)
	v, e, b := db.Stats()
	if v != 10 || e != 10 || b <= 0 {
		t.Fatalf("stats = %d %d %d", v, e, b)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := socialDB(t, ges.Fused)
	dir := t.TempDir()
	path := dir + "/snap.ges"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := ges.LoadFile(path, ges.Fused)
	if err != nil {
		t.Fatal(err)
	}
	q := `MATCH (p:Person)-[:KNOWS]->(f)-[:WROTE]->(post)
	      WHERE id(p) = 1
	      RETURN f.name, post.score ORDER BY post.score DESC`
	a, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ after reload: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	// The reloaded database accepts further writes.
	if err := db2.AddVertex("Person", 77, ges.Props{"name": "new", "age": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ges.LoadFile(dir+"/missing.ges", ges.Fused); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestParallelismKnob(t *testing.T) {
	db := socialDB(t, ges.Factorized)
	db.SetParallelism(4)
	res, err := db.Query(`
		MATCH (p:Person)-[:KNOWS*1..2]->(f) WHERE id(p) = 1
		RETURN COUNT(*) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("friends within 2 hops = %v", res.Rows[0][0])
	}
}
