package ges_test

import (
	"sync"
	"testing"

	"ges/internal/bench"
	"ges/internal/cypher"
	"ges/internal/exec"
	"ges/internal/ldbc"
	"ges/internal/plan"
)

// plannerDS is the sealed LDBC dataset shared by the planner tests
// (separate from the benchmark dataset so tests never observe bench-side
// mutations).
var plannerDS struct {
	once sync.Once
	ds   *ldbc.Dataset
	err  error
}

func plannerDataset(t *testing.T) *ldbc.Dataset {
	t.Helper()
	plannerDS.once.Do(func() {
		ds, err := ldbc.Generate(ldbc.Config{SF: 0.1, Seed: 1})
		if err != nil {
			plannerDS.err = err
			return
		}
		ds.Graph.SealCSR()
		plannerDS.ds = ds
	})
	if plannerDS.err != nil {
		t.Fatal(plannerDS.err)
	}
	return plannerDS.ds
}

// TestEstimateQError bounds the q-error (max of est/actual, actual/est) of
// the cost model's cardinality estimates on LDBC scan, 1-hop, and 2-hop
// patterns. Scans read exact label cardinalities; hops multiply average
// degrees, so the bound loosens with pattern depth.
func TestEstimateQError(t *testing.T) {
	ds := plannerDataset(t)
	cm := plan.NewCostModel(ds.Graph.Stats())
	cases := []struct {
		name string
		src  string
		maxQ float64
	}{
		{"scan", `MATCH (p:Person) RETURN id(p)`, 1.01},
		{"one-hop", `MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN id(f)`, 1.5},
		{"two-hop", `MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN id(c)`, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			compiled, err := cypher.CompileWith(c.src, ds.H.Cat, cypher.Options{Cost: cm})
			if err != nil {
				t.Fatal(err)
			}
			if !compiled.Est.CostBased {
				t.Fatal("estimate not cost-based despite a cost model")
			}
			res, err := exec.New(exec.ModeFused).Run(ds.Graph, compiled.Plan)
			if err != nil {
				t.Fatal(err)
			}
			actual := float64(len(res.Block.Rows))
			est := compiled.Est.Rows
			if actual == 0 || est <= 0 {
				t.Fatalf("degenerate cardinalities: est %g, actual %g", est, actual)
			}
			q := est / actual
			if q < 1 {
				q = 1 / q
			}
			if q > c.maxQ {
				t.Fatalf("q-error %.3f exceeds %.2f (est %.0f, actual %.0f)", q, c.maxQ, est, actual)
			}
			t.Logf("est %.0f actual %.0f q-error %.3f", est, actual, q)
		})
	}
}

// TestCostPlanMatchesSyntactic cross-checks the adversarial ladder in both
// planning modes across 1/2/4/8 workers on the sealed base graph: the cost
// model may reshape the plan, never the rows.
func TestCostPlanMatchesSyntactic(t *testing.T) {
	ds := plannerDataset(t)
	cm := plan.NewCostModel(ds.Graph.Stats())
	refs, err := bench.PlannerCrossCheck(ds, ds.Graph, cm)
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		if ref == "" {
			t.Fatalf("%s produced no reference rows", bench.PlannerQueries[i].Name)
		}
	}
}

// TestCostPlanMatchesSyntacticOverlay repeats the cross-check on a
// transaction-overlay view (committed IU updates layered over the sealed
// CSR), covering the merged base+delta read path.
func TestCostPlanMatchesSyntacticOverlay(t *testing.T) {
	ds := plannerDataset(t)
	cm := plan.NewCostModel(ds.Graph.Stats())
	view, err := bench.PlannerOverlayView(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.PlannerCrossCheck(ds, view, cm); err != nil {
		t.Fatal(err)
	}
}
